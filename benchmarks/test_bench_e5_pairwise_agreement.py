"""E5 — Pairwise agreement between techniques (paper §IV-B).

Paper: with the pair-difference statistic at 99.9 % confidence, the single
connection and SYN tests agree on 78 % of hosts on the forward path and 93 %
on the reverse path; the data-transfer test under-reports reordering during
heavy-reordering periods relative to the packet-pair tests.
"""

from __future__ import annotations

from bench_helpers import run_once

from repro.analysis.agreement import compute_agreement
from repro.core.campaign import Campaign, CampaignConfig
from repro.core.prober import TestName
from repro.core.sample import Direction
from repro.workloads.population import PopulationSpec, generate_population
from repro.workloads.testbed import build_testbed

NUM_HOSTS = 8
ROUNDS = 5


def _run():
    spec = PopulationSpec(num_hosts=NUM_HOSTS, reordering_path_fraction=0.7, load_balanced_fraction=0.0)
    specs = generate_population(spec, seed=53)
    testbed = build_testbed(specs, seed=53)
    config = CampaignConfig(
        rounds=ROUNDS,
        samples_per_measurement=12,
        tests=(TestName.SINGLE_CONNECTION, TestName.SYN, TestName.DATA_TRANSFER),
        inter_measurement_gap=0.2,
        inter_round_gap=1.0,
    )
    campaign = Campaign(testbed.probe, testbed.addresses(), config).run()
    return compute_agreement(
        campaign,
        pairs=[
            (TestName.SINGLE_CONNECTION, TestName.SYN),
            (TestName.SINGLE_CONNECTION, TestName.DATA_TRANSFER),
            (TestName.SYN, TestName.DATA_TRANSFER),
        ],
        confidence=0.999,
        min_pairs=3,
    )


def test_bench_pairwise_agreement(benchmark):
    matrix = run_once(benchmark, _run)
    print()
    print(matrix.to_table())

    forward_cell = matrix.cell_for(TestName.SINGLE_CONNECTION, TestName.SYN, Direction.FORWARD)
    reverse_cell = matrix.cell_for(TestName.SINGLE_CONNECTION, TestName.SYN, Direction.REVERSE)
    assert forward_cell is not None and reverse_cell is not None
    assert forward_cell.hosts_compared >= NUM_HOSTS // 2

    # Paper shape: the two packet-pair techniques agree on a clear majority of
    # hosts at 99.9 % confidence in both directions.
    assert forward_cell.support_fraction >= 0.6
    assert reverse_cell.support_fraction >= 0.6

    transfer_cell = matrix.cell_for(TestName.SYN, TestName.DATA_TRANSFER, Direction.REVERSE)
    assert transfer_cell is not None
    print(f"single vs syn forward agreement: {forward_cell.support_fraction:.0%}")
    print(f"single vs syn reverse agreement: {reverse_cell.support_fraction:.0%}")
    print(f"syn vs data-transfer reverse agreement: {transfer_cell.support_fraction:.0%}")
