"""The TCP Data Transfer Test (paper §III-E).

The baseline point of comparison: fetch the root object from a web server
and watch the order in which the response segments arrive.  The prober
mitigates TCP's congestion-control dynamics by acknowledging the largest
sequence number received (even across holes) and by restricting the
advertised receive window and MSS so the transfer proceeds as a steady
stream of small segments.

The test measures the reverse path only, and its sample count is variable —
one sample per adjacent pair of response segments — which is exactly the
property that motivated the paper's fixed packet-pair tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.probe_connection import ProbeConnection
from repro.core.sample import MeasurementResult, ReorderSample, SampleOutcome
from repro.host.raw_socket import ProbeHost
from repro.net.errors import SampleTimeoutError
from repro.net.packet import TcpFlags
from repro.net.seqnum import seq_add, seq_diff, seq_gt

TEST_NAME = "data-transfer"


@dataclass(frozen=True, slots=True)
class ReceivedSegment:
    """One data segment observed during the transfer."""

    seq: int
    length: int
    time: float
    serial: int
    uid: int


class DataTransferTest:
    """Fetches an object from the remote host and measures reverse-path reordering."""

    def __init__(
        self,
        probe: ProbeHost,
        remote_addr: int,
        remote_port: int = 80,
        mss: int = 256,
        advertised_window: int = 1024,
        request_size: int = 64,
        quiet_period: float = 1.5,
        transfer_timeout: float = 60.0,
        max_segments: int = 400,
    ) -> None:
        self.probe = probe
        self.remote_addr = remote_addr
        self.remote_port = remote_port
        self.mss = mss
        self.advertised_window = advertised_window
        self.request_size = request_size
        self.quiet_period = quiet_period
        self.transfer_timeout = transfer_timeout
        self.max_segments = max_segments

    @property
    def name(self) -> str:
        """The test's canonical name."""
        return TEST_NAME

    def run(self, num_samples: int = 0, spacing: float = 0.0) -> MeasurementResult:
        """Fetch the remote object once and classify segment pairs.

        ``num_samples`` caps the number of samples reported (0 means "as many
        as the transfer yields"); ``spacing`` is accepted for interface
        compatibility but ignored — the server, not the prober, controls
        segment spacing, which is precisely this test's limitation.
        """
        del spacing
        result = MeasurementResult(
            test_name=self.name,
            host_address=self.remote_addr,
            start_time=self.probe.sim.now,
            end_time=self.probe.sim.now,
            spacing=0.0,
        )
        connection = ProbeConnection(
            self.probe,
            self.remote_addr,
            self.remote_port,
            advertised_window=self.advertised_window,
            mss=self.mss,
        )
        try:
            connection.establish()
        except SampleTimeoutError:
            result.notes = "handshake failed"
            result.end_time = self.probe.sim.now
            return result

        cursor = self.probe.capture_cursor()
        connection.send_request(length=self.request_size)
        segments = self._receive_transfer(connection, cursor)
        connection.send_reset()

        samples = self._classify_segments(segments)
        if num_samples > 0:
            samples = samples[:num_samples]
        for sample in samples:
            result.add(sample)
        if len(segments) < 2:
            result.notes = "object too small to measure (single segment or redirect)"
        result.end_time = self.probe.sim.now
        return result

    # ------------------------------------------------------------------ #
    # Transfer machinery
    # ------------------------------------------------------------------ #

    def _receive_transfer(self, connection: ProbeConnection, cursor: int) -> list[ReceivedSegment]:
        """Drive the transfer, acknowledging the largest sequence number seen."""
        segments: list[ReceivedSegment] = []
        seen_serials: set[int] = set()
        highest_ack = connection.state.rcv_nxt
        deadline = self.probe.sim.now + self.transfer_timeout

        while self.probe.sim.now < deadline and len(segments) < self.max_segments:
            before = len(self._data_packets(connection, cursor))
            arrived = self.probe.wait_for_predicate(
                lambda: len(self._data_packets(connection, cursor)) > before,
                timeout=self.quiet_period,
            )
            if not arrived:
                break
            for captured in self._data_packets(connection, cursor):
                if captured.serial in seen_serials:
                    continue
                seen_serials.add(captured.serial)
                tcp = captured.packet.tcp
                assert tcp is not None
                length = len(captured.packet.payload)
                segments.append(
                    ReceivedSegment(
                        seq=tcp.seq,
                        length=length,
                        time=captured.time,
                        serial=captured.serial,
                        uid=captured.packet.uid,
                    )
                )
                segment_end = seq_add(tcp.seq, length)
                if seq_gt(segment_end, highest_ack):
                    highest_ack = segment_end
            # Acknowledge the largest sequence number received so far so the
            # server keeps sending even if intermediate data was lost.
            connection.state.rcv_nxt = highest_ack
            connection.send_ack(highest_ack)
        return segments

    def _data_packets(self, connection: ProbeConnection, cursor: int):
        packets = []
        for captured in self.probe.tcp_packets_since(
            cursor, local_port=connection.local_port, remote_addr=self.remote_addr
        ):
            tcp = captured.packet.tcp
            assert tcp is not None
            if captured.packet.payload and not tcp.has(TcpFlags.SYN) and not tcp.has(TcpFlags.RST):
                packets.append(captured)
        return packets

    # ------------------------------------------------------------------ #
    # Classification
    # ------------------------------------------------------------------ #

    def _classify_segments(self, segments: list[ReceivedSegment]) -> list[ReorderSample]:
        """Build one sample per adjacent pair of distinct segments in send order."""
        if len(segments) < 2:
            return []
        # Deduplicate retransmissions: keep the first arrival of each sequence number.
        first_arrival: dict[int, ReceivedSegment] = {}
        for segment in segments:
            if segment.seq not in first_arrival:
                first_arrival[segment.seq] = segment
        ordered = sorted(first_arrival.values(), key=lambda s: seq_diff(s.seq, segments[0].seq))

        samples: list[ReorderSample] = []
        for index in range(len(ordered) - 1):
            earlier = ordered[index]
            later = ordered[index + 1]
            reordered = later.serial < earlier.serial
            arrival_order = (later.uid, earlier.uid) if reordered else (earlier.uid, later.uid)
            samples.append(
                ReorderSample(
                    index=index,
                    time=later.time,
                    spacing=0.0,
                    forward=SampleOutcome.AMBIGUOUS,
                    reverse=SampleOutcome.REORDERED if reordered else SampleOutcome.IN_ORDER,
                    detail=f"seqs=({earlier.seq},{later.seq})",
                    probe_uids=(earlier.uid, later.uid),
                    response_uids=arrival_order,
                )
            )
        return samples
