"""Tests for the sample model and the reordering metrics."""

from __future__ import annotations

import math

import pytest

from repro.core.metrics import (
    count_exchanges,
    exchange_metric,
    n_reordering,
    reordered_packet_ratio,
    reordering_extent,
    reordering_rate,
    sequence_reordering_probability,
)
from repro.core.sample import Direction, MeasurementResult, ReorderSample, SampleOutcome, merge_results
from repro.net.errors import AnalysisError


def _sample(index: int, forward: SampleOutcome, reverse: SampleOutcome) -> ReorderSample:
    return ReorderSample(index=index, time=float(index), spacing=0.0, forward=forward, reverse=reverse)


def _result(outcomes: list[tuple[SampleOutcome, SampleOutcome]]) -> MeasurementResult:
    result = MeasurementResult(test_name="t", host_address=1, start_time=0.0, end_time=1.0)
    for index, (forward, reverse) in enumerate(outcomes):
        result.add(_sample(index, forward, reverse))
    return result


def test_sample_outcome_validity():
    assert SampleOutcome.IN_ORDER.is_valid()
    assert SampleOutcome.REORDERED.is_valid()
    assert not SampleOutcome.AMBIGUOUS.is_valid()
    assert not SampleOutcome.LOST.is_valid()


def test_measurement_result_counts_and_rates():
    result = _result(
        [
            (SampleOutcome.IN_ORDER, SampleOutcome.IN_ORDER),
            (SampleOutcome.REORDERED, SampleOutcome.IN_ORDER),
            (SampleOutcome.AMBIGUOUS, SampleOutcome.REORDERED),
            (SampleOutcome.LOST, SampleOutcome.LOST),
        ]
    )
    assert result.sample_count() == 4
    assert result.valid_samples(Direction.FORWARD) == 2
    assert result.reordered_samples(Direction.FORWARD) == 1
    assert result.reordering_rate(Direction.FORWARD) == pytest.approx(0.5)
    assert result.ambiguous_samples(Direction.FORWARD) == 2
    assert result.reordering_rate(Direction.REVERSE) == pytest.approx(1.0 / 3.0)
    assert result.has_reordering()
    estimate = result.estimate(Direction.FORWARD)
    assert estimate is not None and estimate.trials == 2
    assert "samples" in result.describe()


def test_measurement_result_no_valid_samples():
    result = _result([(SampleOutcome.LOST, SampleOutcome.AMBIGUOUS)])
    assert result.reordering_rate(Direction.FORWARD) is None
    assert result.estimate(Direction.FORWARD) is None
    assert not result.has_reordering()


def test_merge_results_pools_samples():
    a = _result([(SampleOutcome.IN_ORDER, SampleOutcome.IN_ORDER)])
    b = _result([(SampleOutcome.REORDERED, SampleOutcome.IN_ORDER)])
    merged = merge_results([a, b])
    assert merged is not None
    assert merged.sample_count() == 2
    assert merge_results([]) is None


def test_count_exchanges_matches_inversions():
    assert count_exchanges([1, 2, 3], [1, 2, 3]) == 0
    assert count_exchanges([1, 2, 3], [2, 1, 3]) == 1
    assert count_exchanges([1, 2, 3], [3, 2, 1]) == 3
    # Lost packets are ignored.
    assert count_exchanges([1, 2, 3, 4], [4, 1]) == 1


def test_exchange_metric_pools_results():
    results = [
        _result([(SampleOutcome.REORDERED, SampleOutcome.IN_ORDER)] * 2),
        _result([(SampleOutcome.IN_ORDER, SampleOutcome.IN_ORDER)] * 6),
    ]
    pooled = exchange_metric(results, Direction.FORWARD)
    assert pooled is not None
    assert pooled.rate == pytest.approx(0.25)
    assert exchange_metric([], Direction.FORWARD) is None


def test_reordering_rate_wrapper():
    result = _result([(SampleOutcome.REORDERED, SampleOutcome.IN_ORDER)] * 4)
    estimate = reordering_rate(result, Direction.FORWARD)
    assert estimate is not None
    assert estimate.rate == pytest.approx(1.0)
    assert "forward" in estimate.describe()


def test_sequence_reordering_probability():
    assert sequence_reordering_probability(0.0, 10) == 0.0
    assert sequence_reordering_probability(1.0, 2) == 1.0
    assert sequence_reordering_probability(0.1, 3) == pytest.approx(1 - 0.81)
    with pytest.raises(AnalysisError):
        sequence_reordering_probability(0.5, 1)
    with pytest.raises(AnalysisError):
        sequence_reordering_probability(1.5, 3)


def test_rfc4737_style_metrics():
    expected = [0, 1, 2, 3, 4]
    in_order = [0, 1, 2, 3, 4]
    one_late = [1, 0, 2, 3, 4]
    very_late = [1, 2, 3, 4, 0]
    assert reordered_packet_ratio(expected, in_order) == 0.0
    assert reordered_packet_ratio(expected, one_late) == pytest.approx(0.2)
    assert reordering_extent(expected, one_late) == [0, 1, 0, 0, 0]
    assert n_reordering(expected, very_late) == 4
    assert n_reordering(expected, in_order) == 0
    with pytest.raises(AnalysisError):
        reordered_packet_ratio(expected, [])
    with pytest.raises(AnalysisError):
        reordered_packet_ratio(expected, [99])


def test_merge_results_rejects_mismatched_identity():
    a = _result([(SampleOutcome.IN_ORDER, SampleOutcome.IN_ORDER)])
    b = _result([(SampleOutcome.IN_ORDER, SampleOutcome.IN_ORDER)])
    b.host_address += 1
    with pytest.raises(AnalysisError, match="different \\(test, host\\)"):
        merge_results([a, b])
    c = _result([(SampleOutcome.IN_ORDER, SampleOutcome.IN_ORDER)])
    c.test_name = "other-test"
    with pytest.raises(AnalysisError, match="different \\(test, host\\)"):
        merge_results([a, c])


def test_merge_results_records_mixed_spacings_explicitly():
    a = _result([(SampleOutcome.IN_ORDER, SampleOutcome.IN_ORDER)])
    b = _result([(SampleOutcome.REORDERED, SampleOutcome.IN_ORDER)])
    a.spacing, b.spacing = 0.0, 0.001
    merged = merge_results([a, b])
    assert merged is not None
    assert math.isnan(merged.spacing)
    assert "mixed spacings" in merged.notes
    assert "0.001" in merged.notes
    # Uniform spacings still merge silently.
    b.spacing = 0.0
    uniform = merge_results([a, b])
    assert uniform is not None and uniform.spacing == 0.0 and uniform.notes == "merged"


def test_merge_results_of_merged_results_stays_stable():
    a = _result([(SampleOutcome.IN_ORDER, SampleOutcome.IN_ORDER)])
    b = _result([(SampleOutcome.REORDERED, SampleOutcome.IN_ORDER)])
    a.spacing, b.spacing = 0.0, 0.001
    once = merge_results([a, b])
    twice = merge_results([once, once])
    assert twice is not None
    assert math.isnan(twice.spacing)
    assert twice.notes == "merged (mixed spacings: mixed)"
    assert twice.sample_count() == 4
