"""Small AST utilities shared by the rule families."""

from __future__ import annotations

import ast
from typing import Iterator, Optional


def collect_imports(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted path they import.

    ``import time`` -> ``{"time": "time"}``; ``import os.path`` ->
    ``{"os": "os"}``; ``from time import monotonic as mono`` ->
    ``{"mono": "time.monotonic"}``.  Star imports are ignored (no rule
    in this analyzer needs them, and the scanned tree has none).
    """
    names: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                names[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                names[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return names


def dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` as ``"a.b.c"`` when the chain is plain names, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def resolve_call(node: ast.Call, imports: dict[str, str]) -> Optional[str]:
    """The fully qualified dotted name a call resolves to, if derivable.

    Local aliases are unfolded through the import table, so ``mono()``
    after ``from time import monotonic as mono`` resolves to
    ``"time.monotonic"``.
    """
    name = dotted_name(node.func)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    target = imports.get(head)
    if target is None:
        return name
    return f"{target}.{rest}" if rest else target


def parent_map(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    """Child -> parent links for the whole tree (ast has no uplinks)."""
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def ancestors(node: ast.AST, parents: dict[ast.AST, ast.AST]) -> Iterator[ast.AST]:
    current = parents.get(node)
    while current is not None:
        yield current
        current = parents.get(current)


def is_self_attr(node: ast.AST, self_name: str = "self") -> Optional[str]:
    """The attribute name when ``node`` is ``self.<attr>``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == self_name
    ):
        return node.attr
    return None
