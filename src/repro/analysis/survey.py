"""Survey-level statistics (experiment E6, paper §IV-B).

The paper reports which hosts each technique could be used against (the
dual-connection test was ruled out for 8 hosts behind load balancers and 9
hosts with constant-zero IPIDs) and that more than 15 % of measurements
contained at least one reordered sample.

:func:`run_sharded_survey` is the one-call version of the whole pipeline:
generate a population, run it through the sharded
:class:`~repro.core.runner.CampaignRunner`, and summarise eligibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.report import format_table
from repro.core.campaign import CampaignConfig, CampaignResult
from repro.core.prober import TestName
from repro.core.runner import EXECUTOR_PROCESS, CampaignRunner
from repro.workloads.population import PopulationSpec, generate_population


@dataclass(slots=True)
class EligibilitySummary:
    """Host eligibility and measurement-level reordering prevalence."""

    total_hosts: int
    ineligible: dict[TestName, int] = field(default_factory=dict)
    measurements_total: int = 0
    measurements_with_reordering: int = 0

    @property
    def fraction_measurements_with_reordering(self) -> float:
        """Fraction of successful measurements with >= 1 reordered sample."""
        if self.measurements_total == 0:
            return 0.0
        return self.measurements_with_reordering / self.measurements_total

    def eligible_hosts(self, test: TestName) -> int:
        """Number of hosts usable by ``test``."""
        return self.total_hosts - self.ineligible.get(test, 0)

    def to_table(self) -> str:
        """Render the eligibility table."""
        rows = [
            [test.value, self.total_hosts, self.ineligible.get(test, 0), self.eligible_hosts(test)]
            for test in TestName.all()
        ]
        table = format_table(
            headers=["test", "hosts", "ineligible", "eligible"],
            rows=rows,
            title="Host eligibility by technique",
        )
        suffix = (
            f"\nmeasurements={self.measurements_total} "
            f"with reordering={self.measurements_with_reordering} "
            f"({self.fraction_measurements_with_reordering:.1%})"
        )
        return table + suffix


def summarize_eligibility(campaign) -> EligibilitySummary:
    """Summarise host eligibility and measurement-level reordering prevalence.

    Accepts a :class:`~repro.core.campaign.CampaignResult` or a campaign
    :class:`~repro.api.envelope.ResultEnvelope` straight from a session.
    """
    from repro.api.envelope import unwrap_result

    campaign = unwrap_result(campaign)
    summary = EligibilitySummary(total_hosts=len(campaign.host_addresses))
    for test in TestName.all():
        summary.ineligible[test] = len(campaign.ineligible_hosts(test))
    summary.measurements_total = campaign.total_measurements()
    summary.measurements_with_reordering = campaign.measurements_with_reordering()
    return summary


@dataclass(slots=True)
class SurveyRun:
    """A completed survey: the raw campaign dataset plus its eligibility view."""

    result: CampaignResult
    summary: EligibilitySummary


def run_sharded_survey(
    population: Optional[PopulationSpec] = None,
    config: Optional[CampaignConfig] = None,
    *,
    seed: int = 7,
    shards: int = 1,
    executor: str = EXECUTOR_PROCESS,
    max_workers: Optional[int] = None,
) -> SurveyRun:
    """Generate a population, run a sharded campaign over it, and summarise it.

    This is the survey pipeline end to end: population specs are a pure
    function of ``(population, seed)`` and the sharded runner keeps records a
    pure function of ``(specs, config, seed, shards)`` regardless of
    ``executor``, so two calls with the same arguments return identical
    datasets.  Changing ``shards`` also leaves records untouched except for
    load-balanced sites, whose backend selection hashes ephemeral ports (see
    :mod:`repro.core.runner`).
    """
    specs = generate_population(population or PopulationSpec(), seed=seed)
    runner = CampaignRunner(
        specs,
        config,
        seed=seed,
        shards=shards,
        executor=executor,
        max_workers=max_workers,
    )
    result = runner.execute()
    return SurveyRun(result=result, summary=summarize_eligibility(result))
