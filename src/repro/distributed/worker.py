"""The remote worker process: connect, heartbeat, run batches, stream blobs.

A worker is deliberately dumb: it owns no campaign state, just a socket and
:func:`repro.core.runner.run_shard`.  All fault-tolerance policy (leases,
requeue, quarantine) lives in the coordinator; the worker's only contract is
that it either returns a batch's results or disappears, and the heartbeat
thread keeps the coordinator able to tell "slow" from "gone".

Per batch the worker sends failures first (:data:`MSG_SHARD_ERROR`) and the
encoded successes second (:data:`MSG_RESULT`) — the RESULT frame is what
closes the lease on the coordinator, so failures must already be in flight
when it lands.

``python -m repro workers`` is the CLI front door (see
:mod:`repro.__main__`); :class:`~repro.distributed.backend.RemoteBackend`
spawns the same entry point for its local worker fleet.
"""

from __future__ import annotations

import os
import pickle
import socket
import struct
import threading
import time
from typing import Optional

from repro.core.runner import run_shard
from repro.core.transport import encode_outcomes
from repro.distributed.chaos import (
    KIND_DROP_CONNECTION,
    KIND_HANG_HEARTBEAT,
    KIND_KILL,
    ChaosEngine,
    ChaosSpec,
)
from repro.distributed.protocol import (
    MSG_BATCH,
    MSG_BYE,
    MSG_DRAIN,
    MSG_HEARTBEAT,
    MSG_HELLO,
    MSG_RESULT,
    MSG_SHARD_ERROR,
    pack_shard_errors,
    recv_frame,
    send_frame,
)
from repro.net.errors import ProtocolError

_U32 = struct.Struct("!I")

DEFAULT_HEARTBEAT_INTERVAL = 0.5


def _heartbeat_loop(
    sock: socket.socket,
    lock: threading.Lock,
    interval: float,
    stop: threading.Event,
) -> None:
    while not stop.wait(interval):
        try:
            send_frame(sock, MSG_HEARTBEAT, lock=lock)
        except OSError:
            return


def run_worker(
    host: str,
    port: int,
    *,
    index: int = 0,
    heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
    chaos: Optional[ChaosSpec] = None,
    connect_timeout: float = 30.0,
) -> int:
    """Serve shard batches from the coordinator at ``host:port`` until told
    to drain (or the connection goes away).  Returns a process exit status.
    """
    engine = ChaosEngine(chaos, index) if chaos is not None else None
    sock = socket.create_connection((host, port), timeout=connect_timeout)
    sock.settimeout(None)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    lock = threading.Lock()
    stop_beats = threading.Event()
    try:
        send_frame(sock, MSG_HELLO, pickle.dumps({"index": index, "pid": os.getpid()}), lock=lock)
        threading.Thread(
            target=_heartbeat_loop,
            args=(sock, lock, heartbeat_interval, stop_beats),
            daemon=True,
        ).start()
        while True:
            try:
                msg_type, payload = recv_frame(sock)
            except (ProtocolError, OSError):
                return 1  # coordinator went away (or evicted us)
            if msg_type in (MSG_DRAIN, MSG_BYE):
                send_frame(sock, MSG_BYE, lock=lock)
                return 0
            if msg_type != MSG_BATCH:
                continue
            (batch_id,) = _U32.unpack_from(payload, 0)
            tasks = pickle.loads(payload[4:])
            action = engine.on_batch_start() if engine is not None else None
            if action == KIND_DROP_CONNECTION:
                sock.close()
                return 1
            if action == KIND_HANG_HEARTBEAT:
                # Silence: no beats, no result.  Keep reading so the
                # eviction (the coordinator closing our socket) unparks us.
                stop_beats.set()
                continue
            kill_after = max(1, len(tasks) // 2) if action == KIND_KILL else None
            outcomes = []
            failures: "list[tuple[int, str]]" = []
            for position, task in enumerate(tasks):
                if kill_after is not None and position >= kill_after:
                    os._exit(1)
                if engine is not None and engine.should_poison(task.index):
                    failures.append((task.index, f"chaos: poisoned shard {task.index}"))
                    continue
                try:
                    outcomes.append(run_shard(task))
                except Exception as exc:  # report, never crash the worker
                    failures.append((task.index, f"{type(exc).__name__}: {exc}"))
            if kill_after is not None:
                os._exit(1)  # mid-batch death: the results above are lost
            if failures:
                send_frame(sock, MSG_SHARD_ERROR, pack_shard_errors(batch_id, failures), lock=lock)
            blob = encode_outcomes(outcomes)
            delay = 0.0
            if engine is not None:
                blob, delay = engine.mangle_result(blob)
            if delay:
                time.sleep(delay)
            send_frame(sock, MSG_RESULT, _U32.pack(batch_id) + blob, lock=lock)
    except OSError:
        return 1
    finally:
        stop_beats.set()
        try:
            sock.close()
        except OSError:
            pass


__all__ = ["DEFAULT_HEARTBEAT_INTERVAL", "run_worker"]
