"""The SYN Test (paper §III-D).

Transparent load balancers defeat the dual-connection test because each
connection may be served by a different backend with its own IPID counter.
Load balancers, however, must keep all packets of one flow on one backend, so
the SYN test sends a *pair of SYN packets on the same four-tuple*, differing
only in their initial sequence numbers.

The first SYN to arrive puts the backend in SYN_RECEIVED and elicits a
SYN/ACK; the acknowledgment number of that SYN/ACK identifies which of the
two SYNs arrived first, giving forward-path ordering.  The second SYN to
arrive elicits a second response (a RST on most stacks, a pure ACK on
specification-strict stacks when the SYN is old); because that response is
generated after the SYN/ACK, observing it arrive *before* the SYN/ACK reveals
reverse-path reordering.

After classification the prober completes and closes the connection (the
"politeness" measure the paper describes to avoid resembling a SYN flood).
"""

from __future__ import annotations

from typing import Optional

from repro.core.probe_connection import ProbeConnection
from repro.core.sample import MeasurementResult, ReorderSample, SampleOutcome
from repro.host.raw_socket import CapturedPacket, ProbeHost
from repro.net.errors import MeasurementError
from repro.net.packet import TcpFlags
from repro.net.seqnum import seq_add

TEST_NAME = "syn"


class SynTest:
    """Runs SYN-pair reordering samples against one remote host."""

    def __init__(
        self,
        probe: ProbeHost,
        remote_addr: int,
        remote_port: int = 80,
        sample_timeout: float = 1.0,
        sequence_offset: int = 64,
        polite: bool = True,
        inter_sample_gap: float = 0.05,
    ) -> None:
        if sequence_offset <= 0:
            raise MeasurementError(f"sequence offset must be positive: {sequence_offset}")
        self.probe = probe
        self.remote_addr = remote_addr
        self.remote_port = remote_port
        self.sample_timeout = sample_timeout
        self.sequence_offset = sequence_offset
        self.polite = polite
        self.inter_sample_gap = inter_sample_gap

    @property
    def name(self) -> str:
        """The test's canonical name."""
        return TEST_NAME

    def run(self, num_samples: int, spacing: float = 0.0) -> MeasurementResult:
        """Collect ``num_samples`` SYN-pair samples, optionally spaced apart."""
        if num_samples < 1:
            raise MeasurementError(f"at least one sample is required: {num_samples}")
        result = MeasurementResult(
            test_name=self.name,
            host_address=self.remote_addr,
            start_time=self.probe.sim.now,
            end_time=self.probe.sim.now,
            spacing=spacing,
        )
        for index in range(num_samples):
            result.add(self._collect_sample(index, spacing))
            if self.inter_sample_gap > 0.0:
                # Rate-limit SYN generation, as the paper's tool does.
                self.probe.sim.run_for(self.inter_sample_gap)
        result.end_time = self.probe.sim.now
        return result

    # ------------------------------------------------------------------ #
    # Sample collection
    # ------------------------------------------------------------------ #

    def _collect_sample(self, index: int, spacing: float) -> ReorderSample:
        connection = ProbeConnection(self.probe, self.remote_addr, self.remote_port)
        first_seq = connection.state.iss
        second_seq = seq_add(first_seq, self.sequence_offset)

        cursor = self.probe.capture_cursor()
        sample_time = self.probe.sim.now
        first = connection.send_syn(seq=first_seq)
        if spacing > 0.0:
            self.probe.sim.run_for(spacing)
        second = connection.send_syn(seq=second_seq)

        replies = self.probe.wait_for_packets(
            cursor,
            count=2,
            timeout=self.sample_timeout,
            local_port=connection.local_port,
            remote_addr=self.remote_addr,
        )
        forward, reverse, detail = self._classify(replies, first_seq, second_seq)
        self._clean_up(connection, replies)

        return ReorderSample(
            index=index,
            time=sample_time,
            spacing=spacing,
            forward=forward,
            reverse=reverse,
            detail=detail,
            probe_uids=(first.uid, second.uid),
            response_uids=tuple(captured.packet.uid for captured in replies[:2]),
        )

    def _classify(
        self,
        replies: tuple[CapturedPacket, ...],
        first_seq: int,
        second_seq: int,
    ) -> tuple[SampleOutcome, SampleOutcome, str]:
        syn_ack: Optional[CapturedPacket] = None
        other: Optional[CapturedPacket] = None
        for captured in replies:
            tcp = captured.packet.tcp
            assert tcp is not None
            if tcp.has(TcpFlags.SYN) and tcp.has(TcpFlags.ACK) and syn_ack is None:
                syn_ack = captured
            elif other is None and (tcp.has(TcpFlags.RST) or tcp.has(TcpFlags.ACK)):
                other = captured

        if syn_ack is None:
            if not replies:
                return SampleOutcome.LOST, SampleOutcome.LOST, "no responses"
            return SampleOutcome.AMBIGUOUS, SampleOutcome.AMBIGUOUS, "no SYN/ACK observed"

        syn_ack_tcp = syn_ack.packet.tcp
        assert syn_ack_tcp is not None
        if syn_ack_tcp.ack == seq_add(first_seq, 1):
            forward = SampleOutcome.IN_ORDER
        elif syn_ack_tcp.ack == seq_add(second_seq, 1):
            forward = SampleOutcome.REORDERED
        else:
            forward = SampleOutcome.AMBIGUOUS

        if other is None:
            reverse = SampleOutcome.AMBIGUOUS
        elif other.serial < syn_ack.serial:
            # The second response was generated after the SYN/ACK; seeing it
            # first means the replies were exchanged on the reverse path.
            reverse = SampleOutcome.REORDERED
        else:
            reverse = SampleOutcome.IN_ORDER
        detail = f"syn-ack acks {syn_ack_tcp.ack}"
        return forward, reverse, detail

    def _clean_up(self, connection: ProbeConnection, replies: tuple[CapturedPacket, ...]) -> None:
        """Complete the handshake (politeness) and reset the connection state."""
        syn_ack_tcp = None
        for captured in replies:
            tcp = captured.packet.tcp
            assert tcp is not None
            if tcp.has(TcpFlags.SYN) and tcp.has(TcpFlags.ACK):
                syn_ack_tcp = tcp
                break
        if syn_ack_tcp is not None:
            connection.state.irs = syn_ack_tcp.seq
            connection.state.rcv_nxt = seq_add(syn_ack_tcp.seq, 1)
            connection.state.snd_nxt = syn_ack_tcp.ack
            connection.state.established = True
            if self.polite:
                connection.send_ack()
        connection.send_reset()
