#!/usr/bin/env python3
"""Profile one sharded scenario sweep and print the top cumulative hotspots.

Future performance PRs should start from data, not intuition: this script
runs a small scenario sweep through the sharded campaign runner (serial
executor, so every simulated event stays inside the profiled process) under
:mod:`cProfile` and prints the top-20 functions by cumulative time.  The
PR 3 hot-path overhaul was driven by exactly this view — the costs were
spread across enum flag operations, event-heap comparisons, per-event
predicate polling, and packet length recomputation rather than concentrated
in one function, which is why that PR touched every layer.

Usage::

    PYTHONPATH=src python examples/profile_campaign.py [--hosts N] [--top K]
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats

from repro.core.campaign import CampaignConfig
from repro.core.prober import TestName
from repro.core.runner import EXECUTOR_SERIAL
from repro.api import MatrixRequest, Session
from repro.scenarios import MIXED_OS, ScenarioMatrix, scenario_names

SEED = 1302


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hosts", type=int, default=4, help="hosts per scenario cell")
    parser.add_argument("--shards", type=int, default=2, help="shards per cell")
    parser.add_argument("--top", type=int, default=20, help="hotspots to print")
    parser.add_argument(
        "--sort",
        default="cumulative",
        choices=("cumulative", "tottime"),
        help="pstats sort order",
    )
    args = parser.parse_args()

    config = CampaignConfig(
        rounds=1,
        samples_per_measurement=6,
        tests=(TestName.SINGLE_CONNECTION, TestName.SYN),
        inter_measurement_gap=0.2,
        inter_round_gap=1.0,
    )
    matrix = ScenarioMatrix.of(scenario_names()[:3], (MIXED_OS,))

    request = MatrixRequest(
        matrix=matrix, config=config, hosts=args.hosts, seed=SEED, shards=args.shards
    )
    profiler = cProfile.Profile()
    profiler.enable()
    with Session(backend=EXECUTOR_SERIAL) as session:
        outcome = session.run(request).payload
    profiler.disable()

    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats(args.sort).print_stats(args.top)
    print(
        f"profiled sweep: {len(outcome.runs)} cells, "
        f"{outcome.total_measurements()} measurements"
    )
    print(f"top {args.top} functions by {args.sort} time:")
    print(stream.getvalue())


if __name__ == "__main__":
    main()
