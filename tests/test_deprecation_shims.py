"""Deprecation-shim contract: legacy entry points warn, work, and match.

The CI ``deprecation-shims`` job runs exactly this file with
``-W error::DeprecationWarning``, so every warning a shim emits must be
asserted here with ``pytest.warns`` — a shim that stops warning, warns
twice, or starts warning from the *modern* path fails the job.  Each test
also checks the shim still produces the same dataset as the session layer
it delegates to.
"""

from __future__ import annotations

import warnings

import pytest

from repro.api import CampaignRequest, MatrixRequest, ProbeRequest, ResumeRequest, Session
from repro.core.campaign import CampaignConfig
from repro.core.prober import TestName
from repro.core.runner import EXECUTOR_SERIAL, CampaignRunner, result_digest
from repro.scenarios import ScenarioMatrix, resume_scenario, run_matrix, run_scenario
from repro.workloads.population import PopulationSpec, generate_population

CONFIG = CampaignConfig(
    rounds=1,
    samples_per_measurement=4,
    tests=(TestName.SINGLE_CONNECTION, TestName.SYN),
    inter_measurement_gap=0.2,
    inter_round_gap=1.0,
)


def _session_digest(request) -> str:
    with Session(backend=EXECUTOR_SERIAL) as session:
        return session.run(request).result_digest


def test_campaign_runner_run_warns_and_matches_execute():
    specs = generate_population(PopulationSpec(num_hosts=3), seed=5)
    runner = CampaignRunner(specs, CONFIG, seed=5, shards=2, executor=EXECUTOR_SERIAL)
    with pytest.warns(DeprecationWarning, match="CampaignRunner.run"):
        legacy = runner.run()
    modern = runner.execute()
    assert result_digest(legacy) == result_digest(modern)


def test_run_scenario_warns_and_matches_campaign_request():
    with pytest.warns(DeprecationWarning, match="run_scenario"):
        run = run_scenario(
            "bursty-loss", CONFIG, hosts=3, seed=9, shards=2, executor=EXECUTOR_SERIAL
        )
    assert result_digest(run.result) == _session_digest(
        CampaignRequest(scenario="bursty-loss", config=CONFIG, hosts=3, seed=9, shards=2)
    )


def test_resume_scenario_warns_and_matches_resume_request(tmp_path):
    store_a, store_b = tmp_path / "a", tmp_path / "b"
    for store in (store_a, store_b):
        with Session(backend=EXECUTOR_SERIAL) as session:
            session.run(
                CampaignRequest(
                    scenario="imc2002-survey", config=CONFIG,
                    hosts=3, seed=9, shards=2, store=store,
                )
            )
    with pytest.warns(DeprecationWarning, match="resume_scenario"):
        legacy = resume_scenario(store_a, executor=EXECUTOR_SERIAL)
    assert result_digest(legacy.result) == _session_digest(ResumeRequest(store=store_b))


def test_run_matrix_warns_and_matches_matrix_request():
    matrix = ScenarioMatrix.of(["imc2002-survey", "bursty-loss"])
    with pytest.warns(DeprecationWarning, match="run_matrix"):
        legacy = run_matrix(matrix, CONFIG, hosts=3, seed=9, shards=2, executor=EXECUTOR_SERIAL)
    with Session(backend=EXECUTOR_SERIAL) as session:
        envelope = session.run(
            MatrixRequest(matrix=matrix, config=CONFIG, hosts=3, seed=9, shards=2)
        )
    assert set(legacy.runs) == set(envelope.payload.runs)
    for label, run in legacy.runs.items():
        assert result_digest(run.result) == result_digest(
            envelope.payload.runs[label].result
        )


def test_legacy_cli_flags_warn_and_match_the_run_subcommand(capsys):
    from repro.__main__ import main

    argv = [
        "--scenario", "bursty-loss", "--hosts", "3", "--seed", "9",
        "--rounds", "1", "--samples", "4", "--executor", "serial",
    ]
    with pytest.warns(DeprecationWarning, match="bare-flag invocation"):
        assert main(argv) == 0
    legacy_out = capsys.readouterr().out
    assert main(["run", *argv]) == 0
    assert capsys.readouterr().out == legacy_out
    assert "result-digest=" in legacy_out


def test_modern_surface_emits_no_deprecation_warnings():
    """The session layer (and what it feeds) must stay clean under -W error."""
    from repro.analysis.survey import run_sharded_survey

    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        with Session(backend=EXECUTOR_SERIAL) as session:
            session.run(ProbeRequest(samples=5, seed=2))
            session.run(
                CampaignRequest(scenario="imc2002-survey", config=CONFIG, hosts=2, seed=3)
            )
            session.run(
                MatrixRequest(scenarios=("imc2002-survey",), config=CONFIG, hosts=2, seed=3)
            )
        run_sharded_survey(
            PopulationSpec(num_hosts=2), CONFIG, seed=3, executor=EXECUTOR_SERIAL
        )


def test_modern_cli_subcommands_emit_no_deprecation_warnings(capsys):
    from repro.__main__ import main

    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        assert main([
            "run", "--scenario", "imc2002-survey", "--hosts", "2", "--seed", "3",
            "--rounds", "1", "--samples", "4", "--executor", "serial",
        ]) == 0
    capsys.readouterr()
