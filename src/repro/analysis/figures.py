"""Figure-series builders (experiments E2, E3, E4).

Each builder returns the data series behind a figure of the paper — not a
rendered plot, but the (x, y) rows a plotting tool or the benchmark output
prints — together with the headline statistics the paper quotes about that
figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.campaign import CampaignResult
from repro.core.prober import TestName
from repro.core.sample import Direction
from repro.core.timeseries import SpacingSweepResult
from repro.net.errors import AnalysisError
from repro.stats.cdf import EmpiricalCdf


@dataclass(slots=True)
class Fig5Data:
    """Figure 5: CDF of per-path reordering rates."""

    direction: Direction
    test: TestName
    per_path_rates: dict[int, float]
    cdf: Optional[EmpiricalCdf]

    @property
    def fraction_with_reordering(self) -> float:
        """Fraction of measured paths whose mean rate is non-zero."""
        if not self.per_path_rates:
            return 0.0
        return sum(1 for rate in self.per_path_rates.values() if rate > 0.0) / len(self.per_path_rates)

    def rows(self) -> list[tuple[float, float]]:
        """Return the CDF staircase points."""
        if self.cdf is None:
            return []
        return self.cdf.points()


def build_fig5_cdf(
    campaign: CampaignResult,
    test: TestName = TestName.SINGLE_CONNECTION,
    direction: Direction = Direction.FORWARD,
) -> Fig5Data:
    """Build the Figure 5 CDF from a campaign's per-path mean rates."""
    rates = campaign.path_rates(test, direction)
    cdf = EmpiricalCdf(rates.values()) if rates else None
    return Fig5Data(direction=direction, test=test, per_path_rates=rates, cdf=cdf)


@dataclass(slots=True)
class Fig6Data:
    """Figure 6: per-measurement forward reordering rate for one host, two tests."""

    host_address: int
    series: dict[TestName, list[tuple[float, float]]] = field(default_factory=dict)

    def mean_rate(self, test: TestName) -> Optional[float]:
        """Mean of one test's series, or None if it produced nothing."""
        points = self.series.get(test, [])
        if not points:
            return None
        return sum(rate for _time, rate in points) / len(points)

    def rows(self) -> list[tuple[float, str, float]]:
        """Return (time, test name, rate) rows interleaved across the tests."""
        rows = []
        for test, points in self.series.items():
            for time, rate in points:
                rows.append((time, test.value, rate))
        rows.sort(key=lambda row: row[0])
        return rows


def build_fig6_series(
    campaign: CampaignResult,
    host_address: int,
    tests: Sequence[TestName] = (TestName.SINGLE_CONNECTION, TestName.SYN),
    direction: Direction = Direction.FORWARD,
) -> Fig6Data:
    """Build the Figure 6 comparison series for one (load-balanced) host."""
    data = Fig6Data(host_address=host_address)
    for test in tests:
        data.series[test] = campaign.rates_for(host_address, test, direction)
    return data


@dataclass(slots=True)
class Fig7Data:
    """Figure 7: reordering probability versus inter-packet spacing."""

    sweep: SpacingSweepResult

    def rows(self) -> list[tuple[float, float]]:
        """Return (spacing in microseconds, rate) rows."""
        return [(spacing * 1e6, rate) for spacing, rate in self.sweep.rates()]

    def back_to_back_rate(self) -> float:
        """The measured rate at zero (or minimum) spacing."""
        if not self.sweep.points:
            raise AnalysisError("spacing sweep produced no points")
        return self.sweep.points[0].rate

    def rate_beyond(self, spacing: float) -> Optional[float]:
        """The mean rate over all points at or beyond ``spacing`` seconds."""
        rates = [point.rate for point in self.sweep.points if point.spacing >= spacing]
        if not rates:
            return None
        return sum(rates) / len(rates)

    def decay_spacing(self, fraction: float = 0.2) -> Optional[float]:
        """First spacing where the rate falls below ``fraction`` of the
        back-to-back rate (the paper's curve falls below 2/10 by ~50 us)."""
        baseline = self.back_to_back_rate()
        if baseline <= 0.0:
            return None
        threshold = baseline * fraction
        for point in self.sweep.points[1:]:
            if point.rate <= threshold:
                return point.spacing
        return None


def build_fig7_series(sweep: SpacingSweepResult) -> Fig7Data:
    """Wrap a spacing sweep in the Figure 7 accessor object."""
    return Fig7Data(sweep=sweep)
