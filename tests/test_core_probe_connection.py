"""Tests for the probe-side raw TCP connection helper."""

from __future__ import annotations

import pytest

from repro.core.probe_connection import ProbeConnection
from repro.host.tcp_endpoint import TcpState
from repro.net.errors import SampleTimeoutError
from repro.net.flow import parse_address


def test_establish_completes_three_way_handshake(clean_testbed):
    address = clean_testbed.address_of("target")
    connection = ProbeConnection(clean_testbed.probe, address)
    connection.establish()
    assert connection.established
    # Let the final ACK of the handshake propagate to the server.
    clean_testbed.sim.run_for(0.05)
    server = clean_testbed.site("target").primary_host
    server_connections = list(server.tcp.connections.values())
    assert len(server_connections) == 1
    assert server_connections[0].state is TcpState.ESTABLISHED
    assert connection.state.rcv_nxt == server_connections[0].iss + 1


def test_establish_times_out_for_unknown_host(clean_testbed):
    connection = ProbeConnection(clean_testbed.probe, parse_address("203.0.113.200"))
    with pytest.raises(SampleTimeoutError):
        connection.establish(timeout=0.3)


def test_distinct_connections_use_distinct_ports(clean_testbed):
    address = clean_testbed.address_of("target")
    first = ProbeConnection(clean_testbed.probe, address)
    second = ProbeConnection(clean_testbed.probe, address)
    assert first.local_port != second.local_port


def test_out_of_order_probe_and_reset(clean_testbed):
    address = clean_testbed.address_of("target")
    connection = ProbeConnection(clean_testbed.probe, address)
    connection.establish()
    cursor = clean_testbed.probe.capture_cursor()
    connection.send_data_at_offset(1, length=1)
    replies = clean_testbed.probe.wait_for_packets(cursor, count=1, timeout=1.0, local_port=connection.local_port)
    assert replies
    assert replies[0].packet.tcp.ack == connection.state.remote_expected_seq

    connection.send_reset()
    clean_testbed.sim.run_for(0.1)
    server = clean_testbed.site("target").primary_host
    assert not server.tcp.connections


def test_request_advances_expected_sequence(clean_testbed):
    address = clean_testbed.address_of("target")
    connection = ProbeConnection(clean_testbed.probe, address)
    connection.establish()
    before = connection.state.remote_expected_seq
    connection.send_request(length=32)
    assert connection.state.remote_expected_seq == before + 32


def test_mss_option_is_advertised(clean_testbed):
    address = clean_testbed.address_of("target")
    connection = ProbeConnection(clean_testbed.probe, address, mss=256)
    connection.establish()
    server = clean_testbed.site("target").primary_host
    server_connection = list(server.tcp.connections.values())[0]
    assert server_connection.peer_mss == 256
