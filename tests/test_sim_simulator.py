"""Tests for the clock, event queue, and simulator core."""

from __future__ import annotations

import pytest

from repro.net.errors import ClockError, SimulationError
from repro.sim.clock import SimClock
from repro.sim.events import EventQueue
from repro.sim.simulator import Simulator


def test_clock_moves_forward_only():
    clock = SimClock()
    clock.advance_to(5.0)
    assert clock.now == 5.0
    with pytest.raises(ClockError):
        clock.advance_to(4.0)


def test_clock_rejects_negative_start():
    with pytest.raises(ClockError):
        SimClock(start=-1.0)


def test_event_queue_orders_by_time_then_insertion():
    queue = EventQueue()
    fired = []
    queue.push(2.0, lambda: fired.append("late"))
    queue.push(1.0, lambda: fired.append("early-1"))
    queue.push(1.0, lambda: fired.append("early-2"))
    while (event := queue.pop()) is not None:
        event.callback()
    assert fired == ["early-1", "early-2", "late"]


def test_event_cancellation():
    queue = EventQueue()
    fired = []
    keep = queue.push(1.0, lambda: fired.append("keep"))
    drop = queue.push(0.5, lambda: fired.append("drop"))
    queue.cancel(drop)
    assert len(queue) == 1
    event = queue.pop()
    assert event is keep
    del fired


def test_simulator_schedule_and_run():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(sim.now))
    sim.schedule(2.0, lambda: fired.append(sim.now))
    sim.run_until_idle()
    assert fired == [1.0, 2.0]
    assert sim.now == 2.0
    assert sim.processed_events == 2


def test_simulator_rejects_negative_delay():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_simulator_run_for_advances_clock_without_events():
    sim = Simulator()
    sim.run_for(3.5)
    assert sim.now == 3.5


def test_simulator_run_until_predicate():
    sim = Simulator()
    state = {"done": False}
    sim.schedule(0.5, lambda: state.update(done=True))
    assert sim.run_until(lambda: state["done"], timeout=1.0)
    assert sim.now == pytest.approx(0.5)


def test_simulator_run_until_timeout():
    sim = Simulator()
    assert not sim.run_until(lambda: False, timeout=0.25)
    assert sim.now == pytest.approx(0.25)


def test_simulator_run_until_does_not_overrun_deadline():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, lambda: fired.append("too late"))
    sim.run_until(lambda: False, timeout=1.0)
    assert not fired
    assert sim.pending_events == 1


def test_nested_scheduling_during_events():
    sim = Simulator()
    seen = []

    def outer() -> None:
        seen.append(("outer", sim.now))
        sim.schedule(0.5, lambda: seen.append(("inner", sim.now)))

    sim.schedule(1.0, outer)
    sim.run_until_idle()
    assert seen == [("outer", 1.0), ("inner", 1.5)]


def test_cancel_scheduled_event_via_simulator():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda: fired.append(1))
    sim.cancel(event)
    sim.run_until_idle()
    assert not fired
