"""Typed requests: every option normalized once, at the front door.

Each request dataclass captures one kind of work the library can do —
:class:`ProbeRequest` (one quick-testbed visit), :class:`CampaignRequest`
(a sharded survey over a scenario or an explicit population),
:class:`MatrixRequest` (a scenario × host-OS sweep), and
:class:`ResumeRequest` (continue an interrupted campaign from its durable
store) — and owns the normalization that used to be re-implemented by every
entry point: scenario names resolve to specs, population sizes and OS mixes
apply, per-cell seeds derive, and store paths become
:class:`~repro.store.store.CampaignStore` objects, all in one place.

Requests are frozen and carry no execution state; the same request can be
submitted to any :class:`repro.api.Session` (any backend) and, by the
runner's determinism guarantees, produce a result with the identical
:func:`~repro.core.runner.result_digest`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.core.campaign import CampaignConfig
from repro.core.prober import TestName
from repro.core.runner import CheckpointHook
from repro.net.errors import MeasurementError, StoreError
from repro.scenarios.matrix import (
    MIXED_OS,
    ScenarioLike,
    ScenarioMatrix,
    derive_cell_seed,
    resolve_scenario,
)
from repro.scenarios.population import build_scenario_hosts
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import NetworkScenario
from repro.store.store import CampaignStore
from repro.workloads.testbed import HostSpec, PathSpec

StoreLike = Union[CampaignStore, os.PathLike, str]


def as_store(store: StoreLike, *, create: bool) -> CampaignStore:
    """Accept a store object or a directory path (created lazily on run)."""
    if isinstance(store, CampaignStore):
        return store
    if create:
        return CampaignStore(store)  # begin() writes the manifest on first use
    return CampaignStore.open(store)


# --------------------------------------------------------------------- #
# Normalized (execution-ready) forms
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class NormalizedCampaign:
    """A campaign with every front-door option resolved to concrete values."""

    specs: tuple[HostSpec, ...]
    config: CampaignConfig
    seed: int
    shards: int
    remote_port: int
    tests: Optional[tuple[TestName, ...]]
    label: Optional[str]
    scenario_spec: Optional[NetworkScenario]
    store: Optional[CampaignStore]
    resume: bool
    origin: Optional[dict]
    on_checkpoint: Optional[CheckpointHook]


@dataclass(frozen=True)
class CellPlan:
    """One matrix cell, fully materialized and picklable.

    Everything a worker process needs to execute the cell travels here —
    ``scenario`` already carries the population-size and OS overrides — and
    the host specs themselves are rebuilt inside the worker (a pure function
    of ``(scenario, seed)``), keeping the pickled payload small.
    """

    label: str
    scenario: NetworkScenario
    seed: int
    shards: int
    remote_port: int
    config: CampaignConfig
    tests: Optional[tuple[TestName, ...]]


@dataclass(frozen=True)
class NormalizedMatrix:
    """A sweep reduced to an ordered tuple of independent cell plans."""

    cells: tuple[CellPlan, ...]
    parallel_cells: bool


# --------------------------------------------------------------------- #
# Requests
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class ProbeRequest:
    """One visit to a single simulated host: the library's "hello world".

    Builds the quick testbed (a lone web server behind an adjacent-swap
    path) — or deploys ``host`` verbatim when given — and runs each
    requested technique once.  The result envelope's payload is a
    ``dict[TestName, ProbeReport]``.
    """

    tests: tuple[TestName, ...] = (TestName.SINGLE_CONNECTION,)
    samples: int = 50
    seed: int = 1
    spacing: float = 0.0
    forward_swap_probability: float = 0.05
    reverse_swap_probability: float = 0.02
    remote_port: int = 80
    host: Optional[HostSpec] = None

    def host_spec(self) -> HostSpec:
        """The host to visit: the explicit spec, or the quick-testbed target."""
        if self.host is not None:
            return self.host
        from repro.net.flow import parse_address

        return HostSpec(
            name="target",
            address=parse_address("10.1.0.2"),
            path=PathSpec(
                forward_swap_probability=self.forward_swap_probability,
                reverse_swap_probability=self.reverse_swap_probability,
            ),
        )


@dataclass(frozen=True)
class CampaignRequest:
    """A sharded survey over a scenario population or explicit host specs.

    Exactly one of ``scenario`` / ``specs`` selects the population.  With a
    ``store`` the run checkpoints every completed shard durably (and records
    a scenario ``origin`` in the manifest so :class:`ResumeRequest` can
    rebuild the population later); ``resume=True`` continues an interrupted
    run in place.
    """

    scenario: Optional[ScenarioLike] = None
    specs: Optional[tuple[HostSpec, ...]] = None
    config: Optional[CampaignConfig] = None
    hosts: Optional[int] = None
    os_name: Optional[str] = None
    seed: int = 7
    shards: int = 1
    remote_port: int = 80
    tests: Optional[tuple[TestName, ...]] = None
    scenario_label: Optional[str] = None
    store: Optional[StoreLike] = None
    resume: bool = False
    on_checkpoint: Optional[CheckpointHook] = None

    def normalized(self) -> NormalizedCampaign:
        if (self.scenario is None) == (self.specs is None):
            raise MeasurementError(
                "CampaignRequest needs exactly one population source: "
                "a scenario (name or spec) or explicit host specs"
            )
        scenario_spec: Optional[NetworkScenario] = None
        origin: Optional[dict] = None
        label = self.scenario_label
        if self.scenario is not None:
            scenario_spec = resolve_scenario(self.scenario)
            if self.hosts is not None:
                scenario_spec = scenario_spec.with_population(num_hosts=self.hosts)
            if self.os_name is not None and self.os_name != MIXED_OS:
                scenario_spec = scenario_spec.with_os(self.os_name)
            specs = tuple(build_scenario_hosts(scenario_spec, seed=self.seed))
            label = label or scenario_spec.name
            if self.store is not None:
                origin = {
                    "kind": "scenario",
                    "scenario": resolve_scenario(self.scenario).name,
                    "hosts": self.hosts,
                    "os_name": self.os_name,
                    "seed": self.seed,
                    "scenario_label": label,
                }
        else:
            if self.hosts is not None or self.os_name is not None:
                raise MeasurementError(
                    "hosts/os_name overrides apply to scenario populations, "
                    "not explicit host specs"
                )
            specs = tuple(self.specs or ())
        store = as_store(self.store, create=True) if self.store is not None else None
        return NormalizedCampaign(
            specs=specs,
            config=self.config or CampaignConfig(),
            seed=self.seed,
            shards=self.shards,
            remote_port=self.remote_port,
            tests=tuple(self.tests) if self.tests is not None else None,
            label=label,
            scenario_spec=scenario_spec,
            store=store,
            resume=self.resume,
            origin=origin,
            on_checkpoint=self.on_checkpoint,
        )


@dataclass(frozen=True)
class MatrixRequest:
    """A scenario × host-OS sweep through the campaign runner.

    Accepts either a prebuilt :class:`~repro.scenarios.matrix.ScenarioMatrix`
    or ``scenarios`` + ``os_names`` to build one.  Every cell's seed derives
    stably from ``(seed, scenario name, OS name)``, so adding or removing
    cells never changes the other cells' datasets — which is also what makes
    ``parallel_cells=True`` safe: cells are independent pure functions, and
    the session fans them out across the backend (shards within each cell
    then run serially inside their worker).
    """

    scenarios: tuple[ScenarioLike, ...] = ()
    os_names: tuple[str, ...] = (MIXED_OS,)
    matrix: Optional[ScenarioMatrix] = None
    config: Optional[CampaignConfig] = None
    hosts: Optional[int] = None
    seed: int = 7
    shards: int = 1
    remote_port: int = 80
    tests: Optional[tuple[TestName, ...]] = None
    parallel_cells: bool = False

    def scenario_matrix(self) -> ScenarioMatrix:
        if self.matrix is not None:
            return self.matrix
        if not self.scenarios:
            raise MeasurementError(
                "MatrixRequest needs a matrix or a non-empty scenario list"
            )
        return ScenarioMatrix.of(self.scenarios, self.os_names)

    def _cell_scenario(self, cell) -> NetworkScenario:
        scenario = cell.materialized_scenario()
        if self.hosts is not None:
            scenario = scenario.with_population(num_hosts=self.hosts)
        return scenario

    def normalized(self) -> NormalizedMatrix:
        matrix = self.scenario_matrix()
        config = self.config or CampaignConfig()
        cells = tuple(
            CellPlan(
                label=cell.label,
                scenario=self._cell_scenario(cell),
                seed=derive_cell_seed(self.seed, cell.scenario.name, cell.os_name),
                shards=self.shards,
                remote_port=self.remote_port,
                config=config,
                tests=tuple(self.tests) if self.tests is not None else None,
            )
            for cell in matrix.cells()
        )
        return NormalizedMatrix(cells=cells, parallel_cells=self.parallel_cells)


@dataclass(frozen=True)
class ResumeRequest:
    """Continue an interrupted campaign from its durable store alone.

    The store's manifest records the plan and a scenario ``origin``; the
    population is rebuilt from those (a pure function, so the specs are
    identical), already-durable shards load back, and only the missing
    shards execute.  The merged result is bit-identical — same
    :func:`~repro.core.runner.result_digest` — to an uninterrupted run.
    """

    store: StoreLike
    on_checkpoint: Optional[CheckpointHook] = None

    def normalized(self) -> NormalizedCampaign:
        store = as_store(self.store, create=False)
        plan = store.plan()
        origin = plan.origin or {}
        if origin.get("kind") != "scenario":
            raise StoreError(
                "store was not created from a scenario campaign (no scenario "
                "origin in its manifest); resume it by submitting the original "
                "CampaignRequest with resume=True instead"
            )
        spec = get_scenario(origin["scenario"])
        if origin.get("hosts") is not None:
            spec = spec.with_population(num_hosts=origin["hosts"])
        os_name = origin.get("os_name")
        if os_name is not None and os_name != MIXED_OS:
            spec = spec.with_os(os_name)
        specs = tuple(build_scenario_hosts(spec, seed=origin["seed"]))
        return NormalizedCampaign(
            specs=specs,
            config=plan.config,
            seed=plan.seed,
            shards=plan.shards,
            remote_port=plan.remote_port,
            tests=plan.tests,
            label=plan.scenario,
            scenario_spec=spec,
            store=store,
            resume=True,
            origin=plan.origin,
            on_checkpoint=self.on_checkpoint,
        )


Request = Union[ProbeRequest, CampaignRequest, MatrixRequest, ResumeRequest]


__all__ = [
    "CampaignRequest",
    "CellPlan",
    "MatrixRequest",
    "NormalizedCampaign",
    "NormalizedMatrix",
    "ProbeRequest",
    "Request",
    "ResumeRequest",
    "StoreLike",
    "as_store",
]
