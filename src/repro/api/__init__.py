"""The unified session layer: typed requests in, enveloped results out.

This package is the library's one front door.  Build a request
(:class:`ProbeRequest`, :class:`CampaignRequest`, :class:`MatrixRequest`,
or :class:`ResumeRequest`), submit it to a :class:`Session`, and get back a
:class:`JobHandle` whose :meth:`~repro.api.jobs.JobHandle.result` is a
versioned :class:`ResultEnvelope` carrying the dataset plus its identity
(scenario label, plan digest, result digest).  Work executes on a pluggable
:class:`ExecutionBackend` (``serial`` / ``thread`` / ``process`` built in,
more via :func:`register_backend`), and one session shares one warm pool
across every job, shard, and matrix cell it runs.

The legacy entry points — ``quick_testbed`` + per-technique test classes,
``CampaignRunner.run``, ``run_scenario`` / ``resume_scenario``, and
``run_matrix`` — remain as thin delegating shims over this layer.

>>> from repro.api import ProbeRequest, Session
>>> with Session(backend="serial") as session:
...     job = session.submit(ProbeRequest(samples=20, seed=3))
...     envelope = job.result()
>>> envelope.kind, envelope.version
('probe', 1)
"""

from repro.api.backends import (
    POOL_FAILURES,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    backend_names,
    create_backend,
    register_backend,
)
from repro.api.envelope import (
    ENVELOPE_VERSION,
    ResultEnvelope,
    plan_digest,
    unwrap_result,
)
from repro.api.jobs import (
    JobCancelled,
    JobHandle,
    JobStatus,
    ProgressEvent,
)
from repro.api.requests import (
    CampaignRequest,
    CellPlan,
    MatrixRequest,
    ProbeRequest,
    Request,
    ResumeRequest,
)
from repro.api.session import Session

__all__ = [
    "CampaignRequest",
    "CellPlan",
    "ENVELOPE_VERSION",
    "ExecutionBackend",
    "JobCancelled",
    "JobHandle",
    "JobStatus",
    "MatrixRequest",
    "POOL_FAILURES",
    "ProbeRequest",
    "ProcessBackend",
    "ProgressEvent",
    "Request",
    "ResultEnvelope",
    "ResumeRequest",
    "SerialBackend",
    "Session",
    "ThreadBackend",
    "backend_names",
    "create_backend",
    "plan_digest",
    "register_backend",
    "unwrap_result",
]
