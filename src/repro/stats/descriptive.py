"""Descriptive statistics used throughout the analysis layer.

Implemented directly (rather than via numpy) so the core library has no
runtime dependencies; the benchmark harness is free to use numpy for speed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.net.errors import AnalysisError


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean.  Raises on an empty sequence."""
    if not values:
        raise AnalysisError("mean of an empty sequence is undefined")
    return sum(values) / len(values)


def variance(values: Sequence[float], ddof: int = 1) -> float:
    """Variance with ``ddof`` delta degrees of freedom (sample variance by default)."""
    n = len(values)
    if n <= ddof:
        raise AnalysisError(f"variance requires more than {ddof} values, got {n}")
    center = mean(values)
    return sum((v - center) ** 2 for v in values) / (n - ddof)


def stddev(values: Sequence[float], ddof: int = 1) -> float:
    """Sample standard deviation."""
    return math.sqrt(variance(values, ddof=ddof))


def median(values: Sequence[float]) -> float:
    """Median (average of the two central values for even-length input)."""
    return quantile(values, 0.5)


def quantile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile, ``q`` in [0, 1]."""
    if not values:
        raise AnalysisError("quantile of an empty sequence is undefined")
    if not 0.0 <= q <= 1.0:
        raise AnalysisError(f"quantile level out of range: {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    if lower == upper:
        return ordered[lower]
    fraction = position - lower
    return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction


@dataclass(frozen=True, slots=True)
class Summary:
    """A compact numeric summary of a sample."""

    count: int
    mean: float
    stddev: float
    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float

    def describe(self) -> str:
        """Render the summary on one line."""
        return (
            f"n={self.count} mean={self.mean:.6g} sd={self.stddev:.6g} "
            f"min={self.minimum:.6g} p25={self.p25:.6g} med={self.median:.6g} "
            f"p75={self.p75:.6g} max={self.maximum:.6g}"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Return a :class:`Summary` of ``values``."""
    if not values:
        raise AnalysisError("cannot summarize an empty sequence")
    spread = stddev(values) if len(values) > 1 else 0.0
    return Summary(
        count=len(values),
        mean=mean(values),
        stddev=spread,
        minimum=min(values),
        p25=quantile(values, 0.25),
        median=quantile(values, 0.5),
        p75=quantile(values, 0.75),
        maximum=max(values),
    )
