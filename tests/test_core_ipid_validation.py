"""Tests for IPID eligibility validation."""

from __future__ import annotations

from repro.core.ipid_validation import IpidClass, classify_ipid_sequence, validate_host_ipid
from repro.host.os_profiles import FREEBSD_44, LINUX_24, OPENBSD_30
from repro.net.flow import parse_address
from repro.workloads.testbed import HostSpec, PathSpec, Testbed


def test_shared_monotonic_sequence_is_eligible():
    observations = [(i % 2, 100 + i) for i in range(12)]
    report = classify_ipid_sequence(observations)
    assert report.ipid_class is IpidClass.SHARED_MONOTONIC
    assert report.eligible
    assert report.within_connection_violations == 0
    assert "shared-monotonic" in report.describe()


def test_shared_counter_with_gaps_is_still_eligible():
    observations = [(i % 2, 100 + 5 * i) for i in range(12)]
    report = classify_ipid_sequence(observations)
    assert report.eligible


def test_wraparound_is_tolerated():
    observations = [(i % 2, (65530 + i) % 65536) for i in range(12)]
    report = classify_ipid_sequence(observations)
    assert report.eligible


def test_constant_zero_is_ineligible():
    observations = [(i % 2, 0) for i in range(12)]
    report = classify_ipid_sequence(observations)
    assert report.ipid_class is IpidClass.CONSTANT
    assert not report.eligible


def test_random_ipids_are_ineligible():
    values = [37211, 1289, 60412, 222, 41983, 5121, 33333, 17, 59999, 1024, 47771, 9000]
    observations = [(i % 2, values[i]) for i in range(12)]
    report = classify_ipid_sequence(observations)
    assert report.ipid_class is IpidClass.RANDOM_OR_UNSHARED
    assert not report.eligible


def test_load_balanced_counters_are_ineligible():
    # Two backends, each with its own monotonic counter in a very different range.
    observations = []
    counter_a, counter_b = 100, 40000
    for i in range(12):
        if i % 2 == 0:
            observations.append((0, counter_a))
            counter_a += 1
        else:
            observations.append((1, counter_b))
            counter_b += 1
    report = classify_ipid_sequence(observations)
    assert report.ipid_class is IpidClass.RANDOM_OR_UNSHARED
    assert not report.eligible
    assert report.within_connection_violations == 0
    assert report.cross_connection_violations > 0


def test_insufficient_observations():
    report = classify_ipid_sequence([(0, 1), (1, 2)])
    assert report.ipid_class is IpidClass.INSUFFICIENT
    assert not report.eligible


def _testbed_with_profile(profile, backends: int = 0) -> tuple[Testbed, int]:
    testbed = Testbed(seed=77)
    address = parse_address("10.3.0.2")
    testbed.add_site(
        HostSpec(
            name="target",
            address=address,
            profile=profile,
            path=PathSpec(propagation_delay=0.001),
            load_balancer_backends=backends,
        )
    )
    return testbed, address


def test_validate_host_ipid_end_to_end_random(clean_testbed):
    # A well-behaved host validates as eligible.
    report = validate_host_ipid(clean_testbed.probe, clean_testbed.address_of("target"))
    assert report.eligible

    testbed, address = _testbed_with_profile(OPENBSD_30)
    report = validate_host_ipid(testbed.probe, address)
    assert report.ipid_class is IpidClass.RANDOM_OR_UNSHARED

    testbed, address = _testbed_with_profile(LINUX_24)
    report = validate_host_ipid(testbed.probe, address)
    assert report.ipid_class is IpidClass.CONSTANT


def test_validate_host_ipid_detects_load_balancer():
    # With two backends, connections opened on distinct ports frequently land
    # on different machines; try a few pairs and require that at least one is
    # detected as unshared (a single pair can legitimately share a backend).
    testbed, address = _testbed_with_profile(FREEBSD_44, backends=2)
    verdicts = [validate_host_ipid(testbed.probe, address).eligible for _ in range(6)]
    assert not all(verdicts)
