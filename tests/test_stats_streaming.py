"""Streaming accumulators: exactness against the batch statistics and the
merge law (partitioned observation == interleaved observation)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.sample import Direction, ReorderSample, SampleOutcome
from repro.net.errors import AnalysisError
from repro.stats.cdf import EmpiricalCdf
from repro.stats.intervals import binomial_estimate
from repro.stats.streaming import DirectionCounter, QuantileAccumulator, ReorderCounter

outcomes = st.sampled_from(SampleOutcome)


def _sample(index, forward, reverse):
    return ReorderSample(
        index=index, time=float(index), spacing=0.0, forward=forward, reverse=reverse
    )


@given(st.lists(st.tuples(outcomes, outcomes), max_size=40))
def test_reorder_counter_matches_batch_counts(pairs):
    counter = ReorderCounter()
    for index, (forward, reverse) in enumerate(pairs):
        counter.observe(_sample(index, forward, reverse))
    assert counter.samples == len(pairs)
    for direction, tally in ((Direction.FORWARD, counter.forward), (Direction.REVERSE, counter.reverse)):
        values = [f if direction is Direction.FORWARD else r for f, r in pairs]
        valid = sum(1 for v in values if v.is_valid())
        reordered = sum(1 for v in values if v is SampleOutcome.REORDERED)
        assert tally.valid == valid
        assert tally.reordered == reordered
        assert tally.total == len(pairs)
        if valid:
            assert counter.rate(direction) == reordered / valid
            assert tally.estimate() == binomial_estimate(reordered, valid)
        else:
            assert counter.rate(direction) is None
            assert tally.estimate() is None


@given(st.lists(st.tuples(outcomes, outcomes), max_size=30), st.integers(0, 30))
def test_reorder_counter_merge_law(pairs, cut):
    cut = min(cut, len(pairs))
    whole = ReorderCounter()
    for index, (f, r) in enumerate(pairs):
        whole.observe_outcomes(f, r)
    left, right = ReorderCounter(), ReorderCounter()
    for f, r in pairs[:cut]:
        left.observe_outcomes(f, r)
    for f, r in pairs[cut:]:
        right.observe_outcomes(f, r)
    left.merge(right)
    assert left == whole


def test_counters_accept_wire_strings():
    counter = DirectionCounter()
    counter.observe("reordered")
    counter.observe("in-order")
    counter.observe(SampleOutcome.LOST)
    assert (counter.reordered, counter.in_order, counter.lost) == (1, 1, 1)
    with pytest.raises(AnalysisError):
        counter.observe("sideways")
    both = ReorderCounter()
    both.observe_outcomes("reordered", "lost")
    assert both.direction("forward").reordered == 1
    assert both.direction(Direction.REVERSE).lost == 1
    with pytest.raises(AnalysisError):
        both.direction("up")


rate_values = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@given(st.lists(rate_values, min_size=1, max_size=50))
def test_quantile_accumulator_matches_empirical_cdf(values):
    accumulator = QuantileAccumulator(values)
    cdf = EmpiricalCdf(values)
    assert len(accumulator) == len(cdf)
    assert accumulator.to_cdf().values == cdf.values
    for q in (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0):
        assert accumulator.quantile(q) == cdf.quantile(q)
    for x in values + [-1.0, 0.5, 2.0]:
        assert accumulator.evaluate(x) == cdf.evaluate(x)
        assert accumulator.fraction_above(x) == cdf.fraction_above(x)


@given(st.lists(rate_values, min_size=1, max_size=40), st.integers(0, 40))
def test_quantile_accumulator_merge_law(values, cut):
    cut = min(cut, len(values))
    whole = QuantileAccumulator(values)
    left, right = QuantileAccumulator(values[:cut]), QuantileAccumulator(values[cut:])
    left.merge(right)
    assert left.points() == whole.points()
    for q in (0.0, 0.5, 0.75, 1.0):
        assert left.quantile(q) == whole.quantile(q)


def test_quantile_accumulator_counts_duplicates_compactly():
    accumulator = QuantileAccumulator()
    accumulator.add(0.0, count=1000)
    accumulator.add(0.25, count=3000)
    assert len(accumulator) == 4000
    assert accumulator.quantile(0.25) == 0.0
    assert accumulator.quantile(0.2500001) == 0.25
    assert accumulator.points() == [(0.0, 0.25), (0.25, 1.0)]
    with pytest.raises(AnalysisError):
        accumulator.add(1.0, count=0)
    with pytest.raises(AnalysisError):
        QuantileAccumulator().quantile(0.5)
