"""Determinism rules: DET001-DET004.

The repo's core contract is that every scenario digest is a pure function
of ``(specs, config, seed, tests)``.  These rules flag the ambient-state
leaks that silently break that contract inside the deterministic layers
(``sim/``, ``core/``, ``scenarios/``, ``stats/``, ``store/``,
``workloads/``):

``DET001``
    Wall-clock reads (``time.time``, ``time.monotonic``, ``perf_counter``,
    ``datetime.now`` ...).  Simulated time comes from the event queue; a
    wall-clock value in a record or a seed makes two identical runs differ.
``DET002``
    Ambient entropy: module-level ``random.*``, ``os.urandom``,
    ``uuid.uuid1/uuid4``, ``secrets.*``.  All randomness must flow through an
    explicitly seeded :class:`repro.sim.random.SeededRandom` (whose own
    wrapper module is the single exemption).
``DET003``
    An unordered collection — a ``set()`` / set literal / set comprehension /
    ``frozenset`` or a ``dict`` view (``.keys()/.values()/.items()``) —
    flowing *directly* into a digest / merge / serialization call.  Set
    iteration order varies with PYTHONHASHSEED for str keys; dict views
    inherit whatever insertion order happened.  Wrapping the collection in
    ``sorted(...)`` neutralizes the finding.  Only direct flow (argument,
    ``list()``/``tuple()`` wrapper, comprehension source, or ``*`` splat) is
    tracked; laundering through a variable is out of scope by design.
``DET004``
    ``id()``-dependent ordering: ``sorted``/``.sort``/``min``/``max`` with
    ``key=id`` or a key lambda calling ``id``.  CPython ids are allocation
    addresses — different every run.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.lint.asthelpers import collect_imports, dotted_name, resolve_call
from repro.lint.findings import Finding

RULE_WALL_CLOCK = "DET001"
RULE_AMBIENT_ENTROPY = "DET002"
RULE_UNORDERED_SINK = "DET003"
RULE_ID_ORDER = "DET004"

RULES: dict[str, str] = {
    RULE_WALL_CLOCK: "wall-clock call in deterministic code",
    RULE_AMBIENT_ENTROPY: "ambient (unseeded) entropy in deterministic code",
    RULE_UNORDERED_SINK: "unordered collection flows into a digest/merge/serialization call",
    RULE_ID_ORDER: "id()-dependent ordering",
}

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

_ENTROPY_EXACT = frozenset({"os.urandom", "uuid.uuid1", "uuid.uuid4"})
_ENTROPY_MODULES = ("random.", "secrets.")

#: A call is a digest/merge/serialization sink when its final name segment
#: contains one of these markers (``result_digest``, ``encode_outcomes``,
#: ``json.dumps``, ``merge_records``, ``Struct.pack`` ...).
_SINK_MARKERS = (
    "digest",
    "signature",
    "serialize",
    "merge",
    "dumps",
    "encode",
    "pack",
    "sha1",
    "sha256",
    "sha512",
    "md5",
    "blake2",
    "checksum",
)

_DICT_VIEWS = frozenset({"keys", "values", "items"})
_ORDER_NEUTRALIZERS = frozenset({"sorted", "len", "sum", "min", "max", "any", "all"})


def _is_sink(call: ast.Call, imports: dict[str, str]) -> bool:
    resolved = resolve_call(call, imports)
    if resolved is None:
        if isinstance(call.func, ast.Attribute):
            resolved = call.func.attr  # method on a computed receiver
        else:
            return False
    tail = resolved.rsplit(".", 1)[-1].lower()
    return any(marker in tail for marker in _SINK_MARKERS)


def _unordered_root(node: ast.expr, imports: dict[str, str]) -> Optional[ast.expr]:
    """The unordered collection an expression directly evaluates/iterates,
    or None when the expression is order-safe (or unknowable)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return node
    if isinstance(node, ast.Starred):
        return _unordered_root(node.value, imports)
    if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
        return _unordered_root(node.generators[0].iter, imports)
    if isinstance(node, ast.Call):
        resolved = resolve_call(node, imports)
        if resolved in ("set", "frozenset"):
            return node
        if resolved in _ORDER_NEUTRALIZERS:
            return None
        if resolved in ("list", "tuple", "iter", "repr", "str") and len(node.args) == 1:
            inner = _unordered_root(node.args[0], imports)
            # repr/str of a set is just as order-dependent as iterating it.
            return inner
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _DICT_VIEWS
            and not node.args
        ):
            return node
    return None


def _key_uses_id(keyword: ast.keyword, imports: dict[str, str]) -> bool:
    value = keyword.value
    if isinstance(value, ast.Name) and value.id == "id":
        return True
    if isinstance(value, ast.Lambda):
        for sub in ast.walk(value.body):
            if isinstance(sub, ast.Call) and resolve_call(sub, imports) == "id":
                return True
    return False


def check_determinism(path: str, tree: ast.Module) -> list[Finding]:
    imports = collect_imports(tree)
    findings: list[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = resolve_call(node, imports)
        if resolved is not None:
            if resolved in _WALL_CLOCK:
                findings.append(
                    Finding(
                        path,
                        node.lineno,
                        RULE_WALL_CLOCK,
                        f"wall-clock call {resolved}() in deterministic code; "
                        "use simulated time from the event queue",
                    )
                )
            elif resolved in _ENTROPY_EXACT or resolved.startswith(_ENTROPY_MODULES):
                findings.append(
                    Finding(
                        path,
                        node.lineno,
                        RULE_AMBIENT_ENTROPY,
                        f"ambient entropy {resolved}() in deterministic code; "
                        "draw from an explicitly seeded SeededRandom instead",
                    )
                )
            if resolved in ("sorted", "min", "max") or (
                isinstance(node.func, ast.Attribute) and node.func.attr == "sort"
            ):
                for keyword in node.keywords:
                    if keyword.arg == "key" and _key_uses_id(keyword, imports):
                        findings.append(
                            Finding(
                                path,
                                node.lineno,
                                RULE_ID_ORDER,
                                "ordering by id() depends on allocation addresses; "
                                "sort by a stable field instead",
                            )
                        )
        if _is_sink(node, imports):
            for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                root = _unordered_root(arg, imports)
                if root is not None:
                    kind = (
                        "dict view"
                        if isinstance(root, ast.Call)
                        and isinstance(root.func, ast.Attribute)
                        and root.func.attr in _DICT_VIEWS
                        else "set"
                    )
                    findings.append(
                        Finding(
                            path,
                            node.lineno,
                            RULE_UNORDERED_SINK,
                            f"{kind} iteration feeds a digest/merge/serialization "
                            "call; wrap it in sorted(...) for a canonical order",
                        )
                    )
    return findings
