"""reprolint determinism rules (DET001-DET004): fixtures and near-misses.

Every rule gets at least one triggering fixture and one near-miss that a
naive text match would also flag but the AST analysis must not.  Fixtures
are linted under a ``sim/``-relative path so the determinism family applies.
"""

from __future__ import annotations

import textwrap

from repro.lint import lint_source


def _lint(snippet: str, relpath: str = "sim/fixture.py"):
    return lint_source(textwrap.dedent(snippet), relpath)


def _rules(snippet: str, relpath: str = "sim/fixture.py"):
    return [finding.rule for finding in _lint(snippet, relpath)]


# --------------------------------------------------------------------- #
# DET001 — wall clocks
# --------------------------------------------------------------------- #


def test_det001_flags_time_monotonic():
    findings = _lint(
        """
        import time

        def stamp():
            return time.monotonic()
        """
    )
    assert [f.rule for f in findings] == ["DET001"]
    assert findings[0].line == 5
    assert "time.monotonic" in findings[0].message


def test_det001_resolves_from_import_aliases():
    assert _rules(
        """
        from time import perf_counter as tick

        def stamp():
            return tick()
        """
    ) == ["DET001"]


def test_det001_near_miss_sleep_and_strftime_are_not_clocks():
    assert _rules(
        """
        import time

        def pace():
            time.sleep(0.1)
            return time.strftime
        """
    ) == []


def test_det001_out_of_scope_layer_is_not_linted():
    # api/ is not a deterministic layer; same code, no finding.
    assert _rules(
        """
        import time

        def stamp():
            return time.time()
        """,
        relpath="api/fixture.py",
    ) == []


# --------------------------------------------------------------------- #
# DET002 — ambient entropy
# --------------------------------------------------------------------- #


def test_det002_flags_module_level_random():
    assert _rules(
        """
        import random

        def jitter():
            return random.random()
        """
    ) == ["DET002"]


def test_det002_flags_urandom_and_uuid4():
    assert _rules(
        """
        import os
        import uuid

        def token():
            return os.urandom(8), uuid.uuid4()
        """
    ) == ["DET002", "DET002"]


def test_det002_near_miss_seeded_random_instances_are_fine():
    # Method calls on an explicitly seeded generator object resolve to the
    # local name, not the random module.
    assert _rules(
        """
        from repro.sim.random import SeededRandom

        def jitter(seed):
            rng = SeededRandom(seed)
            return rng.uniform(0.0, 1.0)
        """
    ) == []


def test_det002_sim_random_wrapper_module_is_exempt():
    assert _rules(
        """
        import random

        class SeededRandom(random.Random):
            pass

        def make(seed):
            return random.Random(seed)
        """,
        relpath="sim/random.py",
    ) == []


# --------------------------------------------------------------------- #
# DET003 — unordered collections into digest/merge/serialization sinks
# --------------------------------------------------------------------- #


def test_det003_flags_set_literal_into_digest():
    findings = _lint(
        """
        def digest_of(result_digest):
            return result_digest({1, 2, 3})
        """
    )
    assert [f.rule for f in findings] == ["DET003"]
    assert "set" in findings[0].message


def test_det003_flags_dict_view_into_dumps():
    findings = _lint(
        """
        import json

        def serialize(table):
            return json.dumps(list(table.values()))
        """
    )
    assert [f.rule for f in findings] == ["DET003"]
    assert "dict view" in findings[0].message


def test_det003_near_miss_sorted_wrapper_neutralizes():
    assert _rules(
        """
        import json

        def serialize(table):
            return json.dumps(sorted(table.keys()))
        """
    ) == []


def test_det003_near_miss_sink_name_without_unordered_arg():
    assert _rules(
        """
        import json

        def serialize(rows):
            return json.dumps([row.key for row in rows])
        """
    ) == []


def test_det003_near_miss_len_of_set_is_order_insensitive():
    assert _rules(
        """
        def count_digest(result_digest, table):
            return result_digest(len(set(table)))
        """
    ) == []


# --------------------------------------------------------------------- #
# DET004 — id()-dependent ordering
# --------------------------------------------------------------------- #


def test_det004_flags_sorted_key_id():
    assert _rules(
        """
        def order(xs):
            return sorted(xs, key=id)
        """
    ) == ["DET004"]


def test_det004_flags_sort_method_with_id_lambda():
    assert _rules(
        """
        def order(xs):
            xs.sort(key=lambda x: (id(x), 0))
            return xs
        """
    ) == ["DET004"]


def test_det004_near_miss_stable_field_key():
    assert _rules(
        """
        def order(xs):
            return sorted(xs, key=lambda x: x.index)
        """
    ) == []
