"""Tests for testbed construction, population generation, and validation harness."""

from __future__ import annotations

import pytest

from repro.core.prober import TestName
from repro.host.os_profiles import OS_PROFILES
from repro.net.errors import SimulationError, TopologyError
from repro.net.flow import parse_address
from repro.workloads.population import PopulationSpec, address_block, generate_population, popular_site_specs
from repro.workloads.testbed import HostSpec, PathSpec, StripingSpec, Testbed, build_testbed
from repro.workloads.validation import ValidationCell, paper_rate_grid, run_validation_cell


def test_testbed_rejects_duplicate_sites():
    testbed = Testbed(seed=1)
    spec = HostSpec(name="a", address=parse_address("10.1.0.2"))
    testbed.add_site(spec)
    with pytest.raises(TopologyError):
        testbed.add_site(spec)
    with pytest.raises(TopologyError):
        testbed.site("missing")


def test_testbed_site_handles_expose_traces_and_hosts(reordering_testbed):
    handle = reordering_testbed.site("target")
    assert handle.primary_host.address == reordering_testbed.address_of("target")
    assert handle.forward_trace.point.endswith("forward-arrival")
    assert handle.reverse_trace.point.endswith("reverse-egress")
    assert reordering_testbed.addresses() == [reordering_testbed.address_of("target")]


def test_build_testbed_with_load_balancer_and_striping():
    specs = [
        HostSpec(
            name="balanced",
            address=parse_address("10.8.0.2"),
            load_balancer_backends=3,
            path=PathSpec(forward_striping=StripingSpec(), reverse_striping=StripingSpec()),
        )
    ]
    testbed = build_testbed(specs, seed=9)
    handle = testbed.site("balanced")
    assert handle.load_balancer is not None
    assert len(handle.hosts) == 3
    assert all(host.address == specs[0].address for host in handle.hosts)


def test_generate_population_is_deterministic_and_diverse():
    spec = PopulationSpec(num_hosts=50)
    first = generate_population(spec, seed=7)
    second = generate_population(spec, seed=7)
    assert [h.address for h in first] == [h.address for h in second]
    assert [h.profile.name for h in first] == [h.profile.name for h in second]

    assert len(first) == 50
    assert len({h.address for h in first}) == 50
    profiles = {h.profile.name for h in first}
    assert len(profiles) >= 4
    assert all(h.profile.name in OS_PROFILES for h in first)

    balanced = sum(1 for h in first if h.load_balancer_backends >= 2)
    assert 1 <= balanced <= 20
    reordering = sum(1 for h in first if h.path.forward_swap_probability > 0 or h.path.forward_striping)
    assert reordering >= 10
    assert len(address_block(first)) == 50


def test_generate_population_validates_size():
    with pytest.raises(SimulationError):
        generate_population(PopulationSpec(num_hosts=0))


def test_popular_sites_are_load_balanced():
    sites = popular_site_specs()
    assert len(sites) == 3
    assert all(site.load_balancer_backends >= 2 for site in sites)
    assert all(site.path.forward_swap_probability > 0 for site in sites)


def test_paper_rate_grid_matches_paper():
    assert paper_rate_grid() == (0.01, 0.03, 0.05, 0.10, 0.15, 0.40)


@pytest.mark.parametrize(
    "test",
    [TestName.SINGLE_CONNECTION, TestName.DUAL_CONNECTION, TestName.SYN, TestName.DATA_TRANSFER],
)
def test_validation_cell_accuracy_for_every_technique(test):
    cell = ValidationCell(test=test, forward_rate=0.10, reverse_rate=0.10, samples=60)
    run = run_validation_cell(cell, seed=17)
    assert run.measurement is not None, run.error
    assert run.forward.accuracy == 1.0
    assert run.reverse.accuracy == 1.0
    assert run.compared_samples > 0
    if test is not TestName.DATA_TRANSFER:
        assert run.forward.compared > 0


def test_validation_cell_describe():
    cell = ValidationCell(test=TestName.SYN, forward_rate=0.05, reverse_rate=0.4)
    assert "syn" in cell.describe()
    assert "5%" in cell.describe()
