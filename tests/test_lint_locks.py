"""reprolint lock-discipline rules (LOCK001-LOCK004): fixtures and near-misses.

Fixtures are linted under a ``distributed/``-relative path so the lock
family applies.  The Condition-aliasing fixture is the load-bearing one: it
is the exact shape :class:`repro.distributed.coordinator.Coordinator` uses
(``Condition(self._lock)``), and it must NOT be flagged.
"""

from __future__ import annotations

import textwrap

from repro.lint import lint_source


def _lint(snippet: str):
    return lint_source(textwrap.dedent(snippet), "distributed/fixture.py")


def _rules(snippet: str):
    return [finding.rule for finding in _lint(snippet)]


# --------------------------------------------------------------------- #
# LOCK001 — guarded elsewhere, accessed bare
# --------------------------------------------------------------------- #

_TORN_READ = """
import threading

class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def bump(self):
        with self._lock:
            self._count += 1

    def peek(self):
        return self._count
"""


def test_lock001_flags_unguarded_read_of_guarded_attr():
    findings = _lint(_TORN_READ)
    assert [f.rule for f in findings] == ["LOCK001"]
    assert "_count" in findings[0].message
    assert "_lock" in findings[0].message


def test_lock001_near_miss_read_under_the_lock():
    assert _rules(
        """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self._count = 0

            def bump(self):
                with self._lock:
                    self._count += 1

            def peek(self):
                with self._lock:
                    return self._count
        """
    ) == []


def test_lock001_condition_wrapping_the_lock_is_the_same_guard():
    # Coordinator's shape: acquiring the Condition acquires the wrapped
    # lock, so mixing `with self._cond:` and `with self._lock:` is fine.
    assert _rules(
        """
        import threading

        class Pool:
            def __init__(self):
                self._lock = threading.Lock()
                self._changed = threading.Condition(self._lock)
                self._size = 0

            def grow(self):
                with self._changed:
                    self._size += 1
                    self._changed.notify_all()

            def size(self):
                with self._lock:
                    return self._size
        """
    ) == []


def test_lock001_guard_inherited_from_same_module_base():
    # The guard is defined on the base; the derived class both writes under
    # it and reads bare — the shape ProcessBackend/_PoolBackend share.
    findings = _lint(
        """
        import threading

        class Base:
            def __init__(self):
                self._lock = threading.Lock()

        class Derived(Base):
            def set_state(self, value):
                with self._lock:
                    self._state = value

            def read_state(self):
                return self._state
        """
    )
    assert [f.rule for f in findings] == ["LOCK001"]


def test_lock001_closure_does_not_inherit_the_held_lock():
    # A closure defined inside `with self._lock:` may run after release.
    findings = _lint(
        """
        import threading

        class Pool:
            def __init__(self):
                self._lock = threading.Lock()
                self._size = 0

            def grow(self):
                with self._lock:
                    self._size += 1
                    return lambda: self._size
        """
    )
    assert [f.rule for f in findings] == ["LOCK001"]


# --------------------------------------------------------------------- #
# LOCK002 — Condition.wait() without a predicate loop
# --------------------------------------------------------------------- #


def test_lock002_flags_wait_outside_while():
    findings = _lint(
        """
        import threading

        class Gate:
            def __init__(self):
                self._lock = threading.Lock()
                self._cond = threading.Condition(self._lock)
                self._open = False

            def block(self):
                with self._cond:
                    if not self._open:
                        self._cond.wait()
        """
    )
    assert "LOCK002" in [f.rule for f in findings]


def test_lock002_near_miss_wait_in_while_predicate_loop():
    assert _rules(
        """
        import threading

        class Gate:
            def __init__(self):
                self._lock = threading.Lock()
                self._cond = threading.Condition(self._lock)
                self._open = False

            def block(self):
                with self._cond:
                    while not self._open:
                        self._cond.wait()
        """
    ) == []


def test_lock002_near_miss_wait_for_carries_its_own_loop():
    assert _rules(
        """
        import threading

        class Gate:
            def __init__(self):
                self._lock = threading.Lock()
                self._cond = threading.Condition(self._lock)
                self._open = False

            def block(self):
                with self._cond:
                    self._cond.wait_for(self.ready)

            def ready(self):
                with self._lock:
                    return self._open
        """
    ) == []


# --------------------------------------------------------------------- #
# LOCK003 — attributes assigned after Thread.start()
# --------------------------------------------------------------------- #


def test_lock003_flags_attr_assigned_after_start():
    findings = _lint(
        """
        import threading

        class Runner:
            def launch(self):
                worker = threading.Thread(target=self._run)
                worker.start()
                self._deadline = 5.0

            def _run(self):
                return self._deadline
        """
    )
    assert [f.rule for f in findings] == ["LOCK003"]
    assert "_deadline" in findings[0].message


def test_lock003_flags_inline_construct_and_start():
    findings = _lint(
        """
        import threading

        class Runner:
            def launch(self):
                threading.Thread(target=self._run).start()
                self._deadline = 5.0

            def _run(self):
                return self._deadline
        """
    )
    assert [f.rule for f in findings] == ["LOCK003"]


def test_lock003_near_miss_attr_assigned_before_start():
    assert _rules(
        """
        import threading

        class Runner:
            def launch(self):
                self._deadline = 5.0
                worker = threading.Thread(target=self._run)
                worker.start()

            def _run(self):
                return self._deadline
        """
    ) == []


def test_lock003_near_miss_target_never_reads_the_late_attr():
    assert _rules(
        """
        import threading

        class Runner:
            def launch(self):
                worker = threading.Thread(target=self._run)
                worker.start()
                self._label = "after"

            def _run(self):
                return 42
        """
    ) == []


# --------------------------------------------------------------------- #
# LOCK004 — bare writes in a lock-using class
# --------------------------------------------------------------------- #


def test_lock004_flags_unguarded_write_when_class_uses_locks():
    findings = _lint(
        """
        import threading

        class Mixed:
            def __init__(self):
                self._lock = threading.Lock()
                self._hits = 0
                self._note = None

            def bump(self):
                with self._lock:
                    self._hits += 1

            def label(self, text):
                self._note = text
        """
    )
    assert [f.rule for f in findings] == ["LOCK004"]
    assert "_note" in findings[0].message


def test_lock004_near_miss_init_writes_and_guard_free_classes():
    # __init__ publishes before sharing, and a class with no locks makes no
    # locking claims to violate.
    assert _rules(
        """
        import threading

        class Plain:
            def __init__(self):
                self._hits = 0

            def bump(self):
                self._hits += 1
        """
    ) == []
