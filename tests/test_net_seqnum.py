"""Tests for modular sequence-number arithmetic."""

from __future__ import annotations

from repro.net.seqnum import (
    IPID_MODULO,
    SEQ_MODULO,
    ipid_diff,
    ipid_lt,
    seq_add,
    seq_between,
    seq_diff,
    seq_ge,
    seq_gt,
    seq_le,
    seq_lt,
)


def test_seq_add_wraps():
    assert seq_add(SEQ_MODULO - 1, 1) == 0
    assert seq_add(SEQ_MODULO - 1, 5) == 4


def test_seq_diff_simple():
    assert seq_diff(5, 2) == 3
    assert seq_diff(2, 5) == -3


def test_seq_diff_across_wrap():
    near_top = SEQ_MODULO - 2
    assert seq_diff(1, near_top) == 3
    assert seq_diff(near_top, 1) == -3


def test_ordering_predicates():
    assert seq_lt(2, 5)
    assert seq_le(5, 5)
    assert seq_gt(5, 2)
    assert seq_ge(5, 5)
    assert not seq_lt(5, 2)


def test_ordering_across_wrap():
    near_top = SEQ_MODULO - 10
    assert seq_gt(5, near_top)
    assert seq_lt(near_top, 5)


def test_seq_between_simple_window():
    assert seq_between(10, 15, 20)
    assert not seq_between(10, 25, 20)
    assert seq_between(10, 10, 20)
    assert not seq_between(10, 20, 20)


def test_seq_between_wrapping_window():
    low = SEQ_MODULO - 5
    high = 5
    assert seq_between(low, SEQ_MODULO - 1, high)
    assert seq_between(low, 2, high)
    assert not seq_between(low, 100, high)


def test_seq_between_empty_window():
    assert not seq_between(7, 7, 7)


def test_ipid_diff_uses_16_bit_space():
    assert ipid_diff(1, IPID_MODULO - 1) == 2
    assert ipid_diff(IPID_MODULO - 1, 1) == -2


def test_ipid_lt_wraparound():
    assert ipid_lt(IPID_MODULO - 3, 2)
    assert not ipid_lt(2, IPID_MODULO - 3)
