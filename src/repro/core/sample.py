"""Sample and result models shared by every measurement technique.

The paper's primitive metric is the packet-pair *exchange*: for each sample,
a pair of test packets is sent and the technique decides — independently for
the forward path and the reverse path — whether the pair was exchanged in
flight, stayed in order, or could not be classified (loss, delayed-ACK
ambiguity, unsupported stack behaviour).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.net.errors import AnalysisError
from repro.stats.intervals import BinomialEstimate, binomial_estimate


class Direction(enum.Enum):
    """Which one-way path a classification refers to."""

    FORWARD = "forward"
    """Probe host to remote host (the direction the sample packets travel)."""

    REVERSE = "reverse"
    """Remote host back to the probe host (the direction the responses travel)."""


class SampleOutcome(enum.Enum):
    """Classification of one direction of one packet-pair sample."""

    IN_ORDER = "in-order"
    REORDERED = "reordered"
    AMBIGUOUS = "ambiguous"
    LOST = "lost"

    def is_valid(self) -> bool:
        """True when the outcome contributes to a reordering-rate estimate."""
        return self in (SampleOutcome.IN_ORDER, SampleOutcome.REORDERED)


@dataclass(slots=True)
class ReorderSample:
    """One packet-pair measurement sample.

    ``probe_uids`` carries the simulator-level unique ids of the two sample
    packets (first-sent first) so the controlled-validation harness can
    compare the technique's verdict against trace ground truth.
    """

    index: int
    time: float
    spacing: float
    forward: SampleOutcome
    reverse: SampleOutcome
    detail: str = ""
    probe_uids: tuple[int, ...] = ()
    response_uids: tuple[int, ...] = ()
    """Uids of the response packets used for classification, in the order the
    probe host received them (used by reverse-path ground-truth validation)."""

    def outcome(self, direction: Direction) -> SampleOutcome:
        """Return the outcome for the requested direction."""
        return self.forward if direction is Direction.FORWARD else self.reverse


@dataclass(slots=True)
class MeasurementResult:
    """The outcome of running one technique against one host once.

    A "measurement" in the paper's terminology is a batch of samples (15 in
    the survey); this class aggregates them and exposes per-direction counts
    and rate estimates.
    """

    test_name: str
    host_address: int
    start_time: float
    end_time: float
    spacing: float = 0.0
    samples: list[ReorderSample] = field(default_factory=list)
    notes: str = ""

    def add(self, sample: ReorderSample) -> None:
        """Append a completed sample."""
        self.samples.append(sample)

    def sample_count(self) -> int:
        """Total number of samples attempted."""
        return len(self.samples)

    def valid_samples(self, direction: Direction) -> int:
        """Samples whose outcome in ``direction`` is usable for estimation."""
        return sum(1 for s in self.samples if s.outcome(direction).is_valid())

    def reordered_samples(self, direction: Direction) -> int:
        """Samples classified as reordered in ``direction``."""
        return sum(1 for s in self.samples if s.outcome(direction) is SampleOutcome.REORDERED)

    def ambiguous_samples(self, direction: Direction) -> int:
        """Samples that could not be classified in ``direction``."""
        return sum(
            1
            for s in self.samples
            if s.outcome(direction) in (SampleOutcome.AMBIGUOUS, SampleOutcome.LOST)
        )

    def reordering_rate(self, direction: Direction) -> Optional[float]:
        """Point estimate of the reordering rate, or None if no valid samples."""
        valid = self.valid_samples(direction)
        if valid == 0:
            return None
        return self.reordered_samples(direction) / valid

    def estimate(self, direction: Direction, confidence: float = 0.95) -> Optional[BinomialEstimate]:
        """Rate estimate with a Wilson confidence interval, or None if no valid samples."""
        valid = self.valid_samples(direction)
        if valid == 0:
            return None
        return binomial_estimate(self.reordered_samples(direction), valid, confidence)

    def has_reordering(self) -> bool:
        """True when any sample in either direction was classified as reordered."""
        return any(
            s.forward is SampleOutcome.REORDERED or s.reverse is SampleOutcome.REORDERED
            for s in self.samples
        )

    def sample_uid_pairs(self) -> list[tuple[int, int]]:
        """Return (first_uid, second_uid) pairs for samples that recorded both uids."""
        pairs = []
        for sample in self.samples:
            if len(sample.probe_uids) == 2:
                pairs.append((sample.probe_uids[0], sample.probe_uids[1]))
        return pairs

    def describe(self) -> str:
        """Render a one-line summary of this measurement."""
        forward = self.reordering_rate(Direction.FORWARD)
        reverse = self.reordering_rate(Direction.REVERSE)
        forward_text = "n/a" if forward is None else f"{forward:.3f}"
        reverse_text = "n/a" if reverse is None else f"{reverse:.3f}"
        return (
            f"{self.test_name}: {self.sample_count()} samples, "
            f"forward rate {forward_text}, reverse rate {reverse_text}"
        )


def merge_results(results: Iterable[MeasurementResult]) -> Optional[MeasurementResult]:
    """Merge several measurements of the same (test, host) into one pooled result.

    Mixing different paths or techniques would corrupt pooled estimates, so
    mismatched ``(test_name, host_address)`` pairs raise
    :class:`~repro.net.errors.AnalysisError` instead of silently adopting the
    first result's identity.  Mixed spacings are recorded explicitly: the
    merged ``spacing`` is kept only when every input agrees; otherwise it is
    NaN ("no single spacing") and the distinct values are listed in ``notes``.
    """
    results = list(results)
    if not results:
        return None
    first = results[0]
    identities = {(r.test_name, r.host_address) for r in results}
    if len(identities) > 1:
        raise AnalysisError(
            "cannot merge measurements of different (test, host) pairs: "
            f"{sorted(identities)}"
        )
    # NaN marks an already-mixed merged result; set-dedup alone would treat
    # every NaN as distinct and re-merges of merged results would always
    # report "mixed" even when nothing else differs.
    any_mixed = any(math.isnan(r.spacing) for r in results)
    distinct = sorted({r.spacing for r in results if not math.isnan(r.spacing)})
    if not any_mixed and len(distinct) == 1:
        spacing, notes = first.spacing, "merged"
    else:
        spacing = math.nan
        labels = [f"{s:g}" for s in distinct] + (["mixed"] if any_mixed else [])
        notes = "merged (mixed spacings: " + ", ".join(labels) + ")"
    merged = MeasurementResult(
        test_name=first.test_name,
        host_address=first.host_address,
        start_time=min(r.start_time for r in results),
        end_time=max(r.end_time for r in results),
        spacing=spacing,
        notes=notes,
    )
    for result in results:
        merged.samples.extend(result.samples)
    return merged
