"""Versioned result envelopes: every API result, self-describing.

A :class:`ResultEnvelope` is what :class:`repro.api.Session` hands back for
any request: the payload (a :class:`~repro.core.campaign.CampaignResult`, a
:class:`~repro.scenarios.matrix.MatrixResult`, or a probe's report mapping)
wrapped with its identity — the envelope format version, the scenario label,
a digest of the campaign *plan* that produced it, and the
:func:`~repro.core.runner.result_digest` of the dataset itself.  Two
envelopes with equal ``result_digest`` measured the same thing, regardless
of backend, shard count, worker count, or whether either run was resumed
from a store.

The analysis layer accepts envelopes directly:
:func:`repro.analysis.streaming.survey_from_envelope` streams one, the
``.result`` property satisfies the ``HasCampaignResult`` protocol that
:func:`repro.analysis.scenarios.slice_by_scenario` consumes, and
:func:`unwrap_result` lets batch helpers take either shape.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator, Mapping, Optional

from repro.net.errors import MeasurementError

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.campaign import CampaignResult, HostRoundResult
    from repro.store.store import CampaignPlan

ENVELOPE_VERSION = 1
"""Version of the envelope contract.  Bumped only on incompatible change."""

KIND_PROBE = "probe"
KIND_CAMPAIGN = "campaign"
KIND_MATRIX = "matrix"


def plan_digest(plan: "CampaignPlan") -> str:
    """sha256 of a campaign plan's canonical JSON form.

    Two campaigns with equal plan digests were *configured* identically
    (specs, config, seed, shards, tests, port, scenario); equal
    ``result_digest`` then follows from the runner's determinism.
    """
    canonical = json.dumps(plan.to_mapping(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass(frozen=True, slots=True)
class ResultEnvelope:
    """One request's result plus everything needed to identify it.

    ``payload`` holds the raw result object for ``kind``:

    ========== =====================================================
    kind       payload
    ========== =====================================================
    probe      ``dict[TestName, ProbeReport]`` (one quick-testbed visit)
    campaign   :class:`~repro.core.campaign.CampaignResult`
    matrix     :class:`~repro.scenarios.matrix.MatrixResult`
    ========== =====================================================

    ``meta`` carries request-shaped context (seed, shards, backend name,
    store path, resolved scenario spec...) so a result can be traced back to
    what produced it without keeping the request object alive.
    """

    kind: str
    payload: Any
    scenario: Optional[str] = None
    plan_digest: Optional[str] = None
    result_digest: Optional[str] = None
    version: int = ENVELOPE_VERSION
    meta: Mapping[str, Any] = field(default_factory=dict)
    children: tuple["ResultEnvelope", ...] = ()
    """Per-cell campaign envelopes, for ``matrix`` results."""

    @property
    def result(self) -> "CampaignResult":
        """The campaign dataset (``HasCampaignResult``-compatible accessor)."""
        if self.kind != KIND_CAMPAIGN:
            raise MeasurementError(
                f"envelope of kind {self.kind!r} has no single campaign result"
            )
        return self.payload

    def iter_records(self) -> Iterator["HostRoundResult"]:
        """Every campaign record in the envelope, across matrix cells too."""
        if self.kind == KIND_CAMPAIGN:
            yield from self.payload.records
        elif self.kind == KIND_MATRIX:
            for child in self.children:
                yield from child.iter_records()
        else:
            raise MeasurementError(
                f"envelope of kind {self.kind!r} carries no campaign records"
            )


def unwrap_result(obj: "CampaignResult | ResultEnvelope") -> "CampaignResult":
    """Accept a campaign result or an envelope wrapping one."""
    if isinstance(obj, ResultEnvelope):
        return obj.result
    return obj


__all__ = [
    "ENVELOPE_VERSION",
    "KIND_CAMPAIGN",
    "KIND_MATRIX",
    "KIND_PROBE",
    "ResultEnvelope",
    "plan_digest",
    "unwrap_result",
]
