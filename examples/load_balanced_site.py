#!/usr/bin/env python3
"""Measuring a popular load-balanced site (the www.apple.com scenario, Fig. 6).

A transparent load balancer assigns each TCP connection to one of several
backend machines, each with its own IPID counter.  That silently breaks the
dual-connection test, which is why the paper (a) validates IPID behaviour
before trusting it and (b) introduces the SYN test, whose probe pair shares a
single flow and therefore always reaches the same backend.
"""

from __future__ import annotations

from repro import Direction, HostSpec, PathSpec, Prober, SingleConnectionTest, SynTest, TestName, build_testbed
from repro.core.ipid_validation import validate_host_ipid
from repro.net.flow import parse_address


def main() -> None:
    spec = HostSpec(
        name="www.popular-site.test",
        address=parse_address("192.0.2.10"),
        path=PathSpec(
            forward_swap_probability=0.12,
            reverse_swap_probability=0.03,
            propagation_delay=0.015,
        ),
        web_object_size=48 * 1024,
        load_balancer_backends=4,
    )
    testbed = build_testbed([spec], seed=5)
    address = testbed.address_of("www.popular-site.test")

    report = validate_host_ipid(testbed.probe, address)
    print(f"IPID validation: {report.describe()}")
    print(f"dual-connection test eligible: {report.eligible}")
    print()

    prober = Prober(testbed.probe, samples_per_measurement=15)
    dual_attempts = [prober.run(TestName.DUAL_CONNECTION, address) for _ in range(4)]
    rejected = sum(1 for attempt in dual_attempts if attempt.ineligible)
    print(f"dual-connection attempts rejected by validation: {rejected}/4")
    print()

    single = SingleConnectionTest(testbed.probe, address).run(60)
    syn = SynTest(testbed.probe, address).run(60)
    for result in (single, syn):
        estimate = result.estimate(Direction.FORWARD)
        print(f"{result.test_name:20s} forward rate {estimate.describe()}")
    print()
    print("Both remaining techniques measure the same forward path and agree,")
    print("which is exactly the cross-validation argument of Figure 6.")


if __name__ == "__main__":
    main()
