"""E4 — Figure 7: reordering probability vs. inter-packet spacing.

Paper: on a path with significant reordering, minimum-sized back-to-back
packets are reordered more than 10 % of the time, dropping below 2 % once
50 us of spacing is added and approaching zero by 250 us (dual-connection
test, 1000 samples per point, 1 us steps below 200 us).  Here: the striped
path model, a coarser grid, and 250 samples per point.
"""

from __future__ import annotations

from bench_helpers import run_once

from repro.analysis.figures import build_fig7_series
from repro.core.dual_connection import DualConnectionTest
from repro.core.sample import Direction
from repro.core.timeseries import SpacingSweep
from repro.net.flow import parse_address
from repro.workloads.testbed import HostSpec, PathSpec, StripingSpec, Testbed

SPACINGS = [0.0, 10e-6, 25e-6, 50e-6, 100e-6, 150e-6, 200e-6, 250e-6, 300e-6]
SAMPLES_PER_POINT = 250


def _run_sweep():
    testbed = Testbed(seed=41)
    address = parse_address("10.30.0.2")
    testbed.add_site(
        HostSpec(
            name="striped-path",
            address=address,
            path=PathSpec(
                propagation_delay=0.002,
                access_bandwidth_bps=None,
                forward_striping=StripingSpec(queue_imbalance_scale=30e-6, switch_probability=0.5),
            ),
        )
    )
    sweep = SpacingSweep(
        test_factory=lambda: DualConnectionTest(testbed.probe, address),
        direction=Direction.FORWARD,
        samples_per_point=SAMPLES_PER_POINT,
    )
    return sweep.run(SPACINGS)


def test_bench_fig7_spacing_distribution(benchmark):
    sweep = run_once(benchmark, _run_sweep)
    fig7 = build_fig7_series(sweep)

    print()
    print("Figure 7 — reordering probability vs. inter-packet spacing")
    for spacing_us, rate in fig7.rows():
        print(f"  {spacing_us:6.0f} us  {rate:.4f}")

    back_to_back = fig7.back_to_back_rate()
    beyond_250us = fig7.rate_beyond(250e-6)
    decay = fig7.decay_spacing(fraction=0.35)
    print(f"back-to-back rate: {back_to_back:.3f}")
    print(f"mean rate beyond 250 us: {beyond_250us:.4f}")
    print(f"spacing where the rate falls below 35% of baseline: "
          f"{'n/a' if decay is None else f'{decay * 1e6:.0f} us'}")

    # Paper shape: substantial back-to-back reordering that decays quickly
    # with spacing and is essentially gone within a few hundred microseconds.
    assert back_to_back > 0.05
    assert beyond_250us is not None and beyond_250us < back_to_back / 3.0
    assert beyond_250us < 0.03
    assert decay is not None and decay <= 250e-6
