"""Tests for the stateful middleboxes: NAT, SYN firewall, PMTUD black hole, ECN.

The NAT table is additionally checked against an independent model with
Hypothesis: a straightforward dict-with-expiry reimplementation replays an
arbitrary schedule of outbound packets and must agree with
:class:`~repro.sim.middlebox.NatTable` on every allocated external port.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.flow import parse_address
from repro.net.packet import ICMP_ECHO_REQUEST, IcmpEcho, Packet, TcpFlags, TcpHeader
from repro.sim.middlebox import (
    ECN_CE,
    ECN_ECT0,
    ECN_MASK,
    EcnBleacher,
    EcnMarker,
    IcmpRateLimiter,
    NatForward,
    NatReverse,
    NatTable,
    PmtudBlackHole,
    SynFirewall,
)
from repro.sim.simulator import Simulator

CLIENT = parse_address("10.0.0.1")
SERVER = parse_address("10.9.0.1")
ROUTER = parse_address("10.5.0.1")


def _syn(src_port: int, src: int = CLIENT) -> Packet:
    return Packet.tcp_packet(src, SERVER, TcpHeader(src_port=src_port, dst_port=80, flags=TcpFlags.SYN))


def _ack(src_port: int) -> Packet:
    return Packet.tcp_packet(CLIENT, SERVER, TcpHeader(src_port=src_port, dst_port=80, flags=TcpFlags.ACK))


def _reply(dst_port: int) -> Packet:
    return Packet.tcp_packet(SERVER, CLIENT, TcpHeader(src_port=80, dst_port=dst_port, flags=TcpFlags.ACK))


def _echo() -> Packet:
    return Packet.icmp_packet(CLIENT, SERVER, IcmpEcho(ICMP_ECHO_REQUEST, identifier=1, sequence=1))


# --------------------------------------------------------------------- #
# NAT table semantics
# --------------------------------------------------------------------- #


def test_nat_table_allocates_monotonic_external_ports():
    table = NatTable(timeout=1.0, port_base=2000)
    assert table.translate_forward(CLIENT, 40000, now=0.0) == 2000
    assert table.translate_forward(CLIENT, 40001, now=0.0) == 2001
    assert table.translate_forward(CLIENT + 1, 40000, now=0.0) == 2002
    assert table.active_mappings() == 3
    assert table.mappings_created == 3


def test_nat_mapping_is_stable_while_refreshed():
    table = NatTable(timeout=0.5, port_base=2000)
    now = 0.0
    for _ in range(10):
        assert table.translate_forward(CLIENT, 40000, now=now) == 2000
        now += 0.4  # each forward packet lands inside the idle window
    assert table.mappings_created == 1
    assert table.mappings_expired == 0


def test_idle_mapping_expires_and_reallocates_a_new_port():
    table = NatTable(timeout=0.5, port_base=2000)
    assert table.translate_forward(CLIENT, 40000, now=0.0) == 2000
    assert table.translate_forward(CLIENT, 40000, now=0.6) == 2001
    assert table.mappings_expired == 1
    # The stale external port is gone from the reverse direction too.
    assert table.translate_reverse(2000, now=0.6) is None


def test_reverse_lookup_does_not_refresh_conservative_nat():
    table = NatTable(timeout=0.5, port_base=2000)
    table.translate_forward(CLIENT, 40000, now=0.0)
    # Inbound traffic keeps arriving, but only outbound refreshes the entry.
    assert table.translate_reverse(2000, now=0.4) == (CLIENT, 40000)
    assert table.translate_reverse(2000, now=0.51) is None
    assert table.mappings_expired == 1


def test_reverse_lookup_of_unknown_port_is_none():
    table = NatTable(timeout=1.0)
    assert table.translate_reverse(3123, now=0.0) is None


def test_nat_table_validation():
    with pytest.raises(ValueError):
        NatTable(timeout=0.0)
    with pytest.raises(ValueError):
        NatTable(timeout=1.0, port_base=0)
    with pytest.raises(ValueError):
        NatTable(timeout=1.0, port_base=0x10000)


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),  # which internal flow
            st.floats(min_value=0.0, max_value=0.3, allow_nan=False),  # inter-packet gap
        ),
        max_size=40,
    )
)
@settings(max_examples=150, deadline=None)
def test_nat_table_agrees_with_independent_expiry_model(schedule):
    timeout, port_base = 0.25, 5000
    table = NatTable(timeout=timeout, port_base=port_base)
    model: dict[int, tuple[int, float]] = {}  # flow -> (external port, last used)
    next_port = port_base
    now = 0.0
    for flow, gap in schedule:
        now += gap
        entry = model.get(flow)
        if entry is not None and now - entry[1] > timeout:
            entry = None
        if entry is None:
            entry = (next_port, now)
            next_port += 1
        model[flow] = (entry[0], now)
        assert table.translate_forward(CLIENT, 40000 + flow, now=now) == entry[0]
    # Expiry is lazy (stale entries linger until touched), so the table holds
    # exactly one mapping per flow ever seen.
    assert table.active_mappings() == len(model)


# --------------------------------------------------------------------- #
# NAT pair on the wire
# --------------------------------------------------------------------- #


def test_nat_pair_rewrites_and_restores_ports():
    sim = Simulator()
    table = NatTable(timeout=1.0, port_base=2000)
    outbound, inbound = [], []
    fwd, rev = NatForward(table), NatReverse(table)
    fwd.attach(sim, outbound.append)
    rev.attach(sim, inbound.append)

    fwd.handle_packet(_syn(src_port=40000))
    assert outbound[0].tcp.src_port == 2000
    assert fwd.rewritten == 1
    rev.handle_packet(_reply(dst_port=2000))
    assert inbound[0].tcp.dst_port == 40000
    assert rev.restored == 1


def test_reply_after_timeout_is_dropped_by_the_reverse_half():
    sim = Simulator()
    table = NatTable(timeout=0.1, port_base=2000)
    outbound, inbound = [], []
    fwd, rev = NatForward(table), NatReverse(table)
    fwd.attach(sim, outbound.append)
    rev.attach(sim, inbound.append)

    fwd.handle_packet(_syn(src_port=40000))
    sim.run_for(0.2)  # the flow goes idle past the NAT timeout
    rev.handle_packet(_reply(dst_port=2000))
    assert inbound == []
    assert rev.unmapped_dropped == 1


def test_nat_pair_passes_non_tcp_untouched():
    sim = Simulator()
    table = NatTable(timeout=1.0)
    outbound, inbound = [], []
    fwd, rev = NatForward(table), NatReverse(table)
    fwd.attach(sim, outbound.append)
    rev.attach(sim, inbound.append)
    fwd.handle_packet(_echo())
    rev.handle_packet(_echo())
    assert len(outbound) == 1 and len(inbound) == 1
    assert table.active_mappings() == 0


# --------------------------------------------------------------------- #
# SYN firewall
# --------------------------------------------------------------------- #


def test_syn_firewall_admits_one_syn_per_burst_then_refills():
    sim = Simulator()
    out = []
    firewall = SynFirewall(rate_per_second=1.0, burst=1)
    firewall.attach(sim, out.append)

    firewall.handle_packet(_syn(src_port=40000))
    firewall.handle_packet(_syn(src_port=40001))  # bucket empty: eaten
    assert firewall.syn_passed == 1
    assert firewall.syn_dropped == 1
    sim.run_for(1.0)  # one token trickles back
    firewall.handle_packet(_syn(src_port=40002))
    assert firewall.syn_passed == 2
    assert len(out) == 2


def test_syn_firewall_is_stateful_about_established_flows():
    sim = Simulator()
    out = []
    firewall = SynFirewall(rate_per_second=1.0, burst=1)
    firewall.attach(sim, out.append)

    firewall.handle_packet(_syn(src_port=40000))
    firewall.handle_packet(_ack(src_port=40000))  # admitted flow: passes
    firewall.handle_packet(_ack(src_port=40001))  # never admitted: dropped
    assert len(out) == 2
    assert firewall.out_of_state_dropped == 1
    # The denied flow stays denied even after the bucket refills.
    sim.run_for(5.0)
    firewall.handle_packet(_ack(src_port=40001))
    assert firewall.out_of_state_dropped == 2


def test_syn_firewall_ignores_syn_ack_and_non_tcp():
    sim = Simulator()
    out = []
    firewall = SynFirewall(rate_per_second=1.0, burst=1)
    firewall.attach(sim, out.append)
    firewall.handle_packet(_syn(src_port=40000))
    # The server's SYN|ACK belongs to the admitted flow and spends no token.
    syn_ack = Packet.tcp_packet(
        SERVER, CLIENT,
        TcpHeader(src_port=80, dst_port=40000, flags=TcpFlags.SYN | TcpFlags.ACK),
    )
    firewall.handle_packet(syn_ack)
    firewall.handle_packet(_echo())
    assert len(out) == 3
    assert firewall.syn_passed == 1


def test_syn_firewall_validation():
    with pytest.raises(ValueError):
        SynFirewall(rate_per_second=0.0)
    with pytest.raises(ValueError):
        SynFirewall(rate_per_second=1.0, burst=0)


def test_icmp_policer_partial_refill_is_proportional():
    sim = Simulator()
    out = []
    limiter = IcmpRateLimiter(rate_per_second=4.0, burst=2)
    limiter.attach(sim, out.append)
    for _ in range(4):
        limiter.handle_packet(_echo())
    assert limiter.icmp_forwarded == 2
    sim.run_for(0.25)  # 0.25s at 4 tokens/s buys back exactly one token
    for _ in range(2):
        limiter.handle_packet(_echo())
    assert limiter.icmp_forwarded == 3
    assert limiter.icmp_dropped == 3


# --------------------------------------------------------------------- #
# PMTUD black hole
# --------------------------------------------------------------------- #


def _big_segment(payload_length: int) -> Packet:
    return Packet.tcp_packet(
        CLIENT, SERVER,
        TcpHeader(src_port=40000, dst_port=80, flags=TcpFlags.ACK),
        payload=b"x" * payload_length,
    )


def test_black_hole_eats_big_df_packets_silently():
    sim = Simulator()
    out = []
    hole = PmtudBlackHole(mtu=256)
    hole.attach(sim, out.append)
    hole.handle_packet(_big_segment(10))  # fits: passes
    hole.handle_packet(_big_segment(400))  # too big + DF: vanishes
    big_no_df = _big_segment(400).with_ip(dont_fragment=False)
    hole.handle_packet(big_no_df)  # too big but fragmentable: passes
    assert len(out) == 2
    assert hole.black_holed == 1
    assert hole.errors_sent == 0


def test_error_sink_turns_the_hole_into_an_rfc1191_router():
    sim = Simulator()
    out, errors = [], []
    hole = PmtudBlackHole(mtu=256, router_address=ROUTER, error_sink=errors.append)
    hole.attach(sim, out.append)
    offending = _big_segment(400)
    hole.handle_packet(offending)
    assert out == []
    assert hole.errors_sent == 1
    error_packet = errors[0]
    assert error_packet.ip.src == ROUTER
    assert error_packet.ip.dst == CLIENT  # back to the offender's source
    assert error_packet.icmp.is_frag_needed()
    assert error_packet.icmp.next_hop_mtu == 256
    assert error_packet.icmp.quoted_flow().four_tuple() == offending.four_tuple()


def test_black_hole_validation():
    with pytest.raises(ValueError):
        PmtudBlackHole(mtu=67)


# --------------------------------------------------------------------- #
# ECN marking and bleaching
# --------------------------------------------------------------------- #


def test_marker_stamps_only_unmarked_packets():
    sim = Simulator()
    out = []
    marker = EcnMarker(codepoint=ECN_ECT0)
    marker.attach(sim, out.append)
    marker.handle_packet(_syn(src_port=40000))
    assert out[0].ip.tos & ECN_MASK == ECN_ECT0
    marker.handle_packet(out[0])  # already carries the codepoint
    assert marker.marked == 1


def test_bleacher_erases_any_codepoint_and_preserves_dscp():
    sim = Simulator()
    out = []
    bleacher = EcnBleacher()
    bleacher.attach(sim, out.append)
    dscp = 0b101000
    marked = _syn(src_port=40000).with_ip(tos=dscp | ECN_CE)
    bleacher.handle_packet(marked)
    assert out[0].ip.tos == dscp
    bleacher.handle_packet(out[0])  # nothing left to bleach
    assert bleacher.bleached == 1


def test_mark_then_bleach_round_trips_the_tos_byte():
    sim = Simulator()
    marked, cleaned = [], []
    marker = EcnMarker()
    bleacher = EcnBleacher()
    marker.attach(sim, marked.append)
    bleacher.attach(sim, cleaned.append)
    original = _syn(src_port=40000)
    marker.handle_packet(original)
    bleacher.handle_packet(marked[0])
    assert cleaned[0].ip.tos == original.ip.tos


def test_marker_validation():
    with pytest.raises(ValueError):
        EcnMarker(codepoint=4)
