"""``python -m repro`` — run a named scenario survey from the command line.

Examples::

    python -m repro --list-scenarios
    python -m repro --scenario imc2002-survey --hosts 12 --shards 4 --seed 7
    python -m repro --scenario route-flap --hosts 8 --rounds 2 --executor serial

The survey runs through the sharded :class:`~repro.core.runner.CampaignRunner`
and prints the host-eligibility summary table plus the scenario's headline
reordering numbers.  Output is deterministic for a fixed
``(--scenario, --hosts, --seed, --shards)``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.scenarios import compare_scenarios
from repro.analysis.survey import summarize_eligibility
from repro.core.campaign import CampaignConfig
from repro.core.runner import _EXECUTORS, EXECUTOR_PROCESS
from repro.scenarios.matrix import run_scenario
from repro.scenarios.registry import LEGACY_SCENARIO, list_scenarios, scenario_names


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run a named network-scenario survey and print its summary.",
    )
    parser.add_argument(
        "--scenario",
        default=LEGACY_SCENARIO,
        help=f"registered scenario name (default: {LEGACY_SCENARIO})",
    )
    parser.add_argument("--hosts", type=int, default=None, help="override population size")
    parser.add_argument("--shards", type=int, default=1, help="number of campaign shards")
    parser.add_argument("--seed", type=int, default=7, help="base seed for the whole survey")
    parser.add_argument("--rounds", type=int, default=2, help="survey rounds (default: 2)")
    parser.add_argument(
        "--samples", type=int, default=10, help="samples per measurement (default: 10)"
    )
    parser.add_argument(
        "--executor",
        choices=_EXECUTORS,
        default=EXECUTOR_PROCESS,
        help="shard executor (default: process)",
    )
    parser.add_argument(
        "--list-scenarios",
        action="store_true",
        help="list registered scenarios and exit",
    )
    return parser


def _list_scenarios() -> None:
    for scenario in list_scenarios():
        conditions = ", ".join(type(c).__name__ for c in scenario.conditions) or "static"
        print(f"{scenario.name:22s} [{conditions}]")
        print(f"  {scenario.description}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_scenarios:
        _list_scenarios()
        return 0
    if args.scenario not in scenario_names():
        known = ", ".join(scenario_names())
        print(f"unknown scenario {args.scenario!r}; registered: {known}", file=sys.stderr)
        return 2

    config = CampaignConfig(rounds=args.rounds, samples_per_measurement=args.samples)
    run = run_scenario(
        args.scenario,
        config,
        hosts=args.hosts,
        seed=args.seed,
        shards=args.shards,
        executor=args.executor,
    )
    result = run.result
    print(
        f"scenario={args.scenario} hosts={len(result.host_addresses)} "
        f"seed={args.seed} shards={args.shards} records={len(result.records)}"
    )
    print()
    print(summarize_eligibility(result).to_table())
    print()
    print(compare_scenarios({args.scenario: result}).to_table())
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
