"""Time-varying path conditions.

The static elements in :mod:`repro.sim.reorder` hold their parameters for the
lifetime of a run, which is enough for controlled validation (§IV-A) but not
for the pathologies the survey crossed paths with (§IV-B): loss arrives in
episodes, reordering spikes when routes flap, and queue contention follows
the diurnal traffic cycle.  The elements here make those processes
first-class path conditions:

* :class:`GilbertElliottLossElement` — the classic two-state (good/bad) burst
  loss chain; long loss-free stretches punctuated by episodes in which most
  packets die.
* :class:`RouteFlapReorderer` — an adjacent-swap reorderer whose swap
  probability jumps during randomly timed "flap" episodes and relaxes to a
  quiet baseline between them.
* :class:`DiurnalCongestionElement` — a delay-jitter stage whose mean jitter
  is modulated sinusoidally over simulated time, so paths reorder more at
  (simulated) peak hours than off-peak.

Every element draws exclusively from the :class:`~repro.sim.random.SeededRandom`
handed to it and advances its internal schedule from ``sim.now`` alone, so a
run remains a pure function of its seed.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.net.packet import Packet
from repro.sim.path import PathElement
from repro.sim.random import SeededRandom
from repro.sim.reorder import AdjacentSwapReorderer


class GilbertElliottLossElement(PathElement):
    """Bursty loss from a two-state Markov chain (Gilbert–Elliott model).

    The element is in a *good* or *bad* state.  Each packet first advances the
    chain (good→bad with ``p_good_to_bad``, bad→good with ``p_bad_to_good``)
    and is then dropped with the loss probability of the resulting state.
    With a small ``good_loss``, a large ``bad_loss``, and asymmetric
    transition probabilities this produces the long quiet stretches and dense
    loss episodes of real congested paths.
    """

    def __init__(
        self,
        rng: SeededRandom,
        good_loss: float = 0.0,
        bad_loss: float = 0.3,
        p_good_to_bad: float = 0.005,
        p_bad_to_good: float = 0.2,
    ) -> None:
        super().__init__()
        for name, value in (
            ("good loss", good_loss),
            ("bad loss", bad_loss),
            ("good-to-bad probability", p_good_to_bad),
            ("bad-to-good probability", p_bad_to_good),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} out of range: {value}")
        self.good_loss = good_loss
        self.bad_loss = bad_loss
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self._rng = rng
        self.in_bad_state = False
        self.bursts_entered = 0
        self.packets_dropped = 0
        self.packets_forwarded = 0

    def handle_packet(self, packet: Packet) -> None:
        if self.in_bad_state:
            if self._rng.bernoulli(self.p_bad_to_good):
                self.in_bad_state = False
        elif self._rng.bernoulli(self.p_good_to_bad):
            self.in_bad_state = True
            self.bursts_entered += 1
        loss = self.bad_loss if self.in_bad_state else self.good_loss
        if self._rng.bernoulli(loss):
            self.packets_dropped += 1
            return
        self.packets_forwarded += 1
        self._emit(packet)


class RouteFlapReorderer(AdjacentSwapReorderer):
    """Adjacent-swap reordering whose intensity spikes during route flaps.

    The element alternates between a *quiet* regime (swap probability
    ``base_swap_probability``) and a *flap* regime (``flap_swap_probability``).
    Episode boundaries are an alternating renewal process in simulated time:
    quiet intervals are exponential with mean ``mean_quiet_interval`` and flap
    episodes exponential with mean ``mean_flap_duration``.  The schedule is
    sampled lazily as packets arrive, so it consumes randomness (and hence
    perturbs nothing) only when traffic actually flows.
    """

    def __init__(
        self,
        rng: SeededRandom,
        base_swap_probability: float = 0.0,
        flap_swap_probability: float = 0.35,
        mean_quiet_interval: float = 30.0,
        mean_flap_duration: float = 3.0,
        max_hold_time: float = 0.03,
    ) -> None:
        super().__init__(base_swap_probability, rng, max_hold_time=max_hold_time)
        if not 0.0 <= flap_swap_probability <= 1.0:
            raise ValueError(f"flap swap probability out of range: {flap_swap_probability}")
        if mean_quiet_interval <= 0.0:
            raise ValueError(f"mean quiet interval must be positive: {mean_quiet_interval}")
        if mean_flap_duration <= 0.0:
            raise ValueError(f"mean flap duration must be positive: {mean_flap_duration}")
        self.base_swap_probability = base_swap_probability
        self.flap_swap_probability = flap_swap_probability
        self.mean_quiet_interval = mean_quiet_interval
        self.mean_flap_duration = mean_flap_duration
        self.flapping = False
        self.flaps_started = 0
        self._next_toggle: Optional[float] = None

    def _advance_schedule(self) -> None:
        now = self.sim.now
        if self._next_toggle is None:
            self._next_toggle = now + self._rng.exponential(self.mean_quiet_interval)
        while now >= self._next_toggle:
            self.flapping = not self.flapping
            if self.flapping:
                self.flaps_started += 1
                self._next_toggle += self._rng.exponential(self.mean_flap_duration)
            else:
                self._next_toggle += self._rng.exponential(self.mean_quiet_interval)
        self.swap_probability = (
            self.flap_swap_probability if self.flapping else self.base_swap_probability
        )

    def handle_packet(self, packet: Packet) -> None:
        self._advance_schedule()
        super().handle_packet(packet)


class DiurnalCongestionElement(PathElement):
    """Queue-contention jitter that follows a (simulated) daily cycle.

    Each packet receives an extra delay that is exponentially distributed
    with a *time-dependent* mean::

        mean(t) = peak_jitter * max(0, (1 + sin(2*pi*(t - phase)/period)) / 2)

    i.e. the jitter swings between zero (off-peak) and ``peak_jitter``
    (peak hour) once per ``period`` seconds of simulated time.  Packets whose
    sampled delays invert their spacing arrive reordered, so reordering rates
    measured at different simulated times of day differ — the property the
    scenario layer uses to model diurnal congestion.
    """

    def __init__(
        self,
        rng: SeededRandom,
        peak_jitter: float = 0.002,
        period: float = 86_400.0,
        phase: float = 0.0,
        base_delay: float = 0.0,
    ) -> None:
        super().__init__()
        if peak_jitter < 0.0:
            raise ValueError(f"peak jitter cannot be negative: {peak_jitter}")
        if period <= 0.0:
            raise ValueError(f"period must be positive: {period}")
        if base_delay < 0.0:
            raise ValueError(f"base delay cannot be negative: {base_delay}")
        self.peak_jitter = peak_jitter
        self.period = period
        self.phase = phase
        self.base_delay = base_delay
        self._rng = rng
        self.packets_seen = 0

    def jitter_mean_at(self, time: float) -> float:
        """The mean extra delay applied to a packet arriving at ``time``."""
        swing = (1.0 + math.sin(2.0 * math.pi * (time - self.phase) / self.period)) / 2.0
        return self.peak_jitter * max(0.0, swing)

    def handle_packet(self, packet: Packet) -> None:
        self.packets_seen += 1
        mean = self.jitter_mean_at(self.sim.now)
        jitter = self._rng.exponential(mean) if mean > 0.0 else 0.0
        self._emit_after(self.base_delay + jitter, packet)
