"""Empirical cumulative distribution functions.

Figure 5 of the paper is a CDF of per-path reordering rates; the analysis
layer builds it with :class:`EmpiricalCdf`, which also provides the series of
(value, cumulative fraction) points a plotting tool or the benchmark output
needs.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Iterable, Sequence

from repro.net.errors import AnalysisError


def quantile_index(q: float, n: int) -> int:
    """Index of the smallest order statistic v with CDF(v) >= q.

    The empirical CDF jumps to ``k / n`` at the k-th order statistic, so the
    answer is the ``ceil(q * n)``-th value (1-based).  ``round(q * n + 0.5)``
    is *not* equivalent: Python rounds half to even, so whenever ``q * n``
    lands on an exact integer (e.g. q=0.75, n=4) it overshoots by one.
    """
    if not 0.0 <= q <= 1.0:
        raise AnalysisError(f"quantile level out of range: {q}")
    if n < 1:
        raise AnalysisError("quantile of an empty sample is undefined")
    return max(0, min(n - 1, math.ceil(q * n) - 1))


class EmpiricalCdf:
    """The empirical CDF of a one-dimensional sample."""

    def __init__(self, values: Iterable[float]) -> None:
        self._values = sorted(float(v) for v in values)
        if not self._values:
            raise AnalysisError("cannot build a CDF from an empty sample")

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> tuple[float, ...]:
        """The sorted underlying sample."""
        return tuple(self._values)

    def evaluate(self, x: float) -> float:
        """Return P(X <= x) under the empirical distribution."""
        return bisect_right(self._values, x) / len(self._values)

    def quantile(self, q: float) -> float:
        """Return the smallest sample value v with CDF(v) >= q."""
        return self._values[quantile_index(q, len(self._values))]

    def fraction_above(self, x: float) -> float:
        """Return P(X > x); e.g. the fraction of paths with any reordering is fraction_above(0)."""
        return 1.0 - self.evaluate(x)

    def points(self) -> list[tuple[float, float]]:
        """Return the staircase points (value, cumulative fraction) for plotting."""
        n = len(self._values)
        return [(value, (index + 1) / n) for index, value in enumerate(self._values)]

    def to_rows(self, precision: int = 6) -> list[str]:
        """Render the CDF points as tab-separated text rows."""
        return [f"{value:.{precision}f}\t{fraction:.4f}" for value, fraction in self.points()]


def merge_cdfs(cdfs: Sequence[EmpiricalCdf]) -> EmpiricalCdf:
    """Pool several empirical CDFs into one over the combined sample."""
    if not cdfs:
        raise AnalysisError("cannot merge an empty list of CDFs")
    pooled: list[float] = []
    for cdf in cdfs:
        pooled.extend(cdf.values)
    return EmpiricalCdf(pooled)
