"""Middleboxes: transparent load balancers and ICMP rate limiters.

The paper identifies transparent load balancers as the failure mode of the
dual-connection test (each connection may land on a different backend with
its own IPID counter) and ICMP filtering / rate limiting as a weakness of
ping-based methodologies such as Bennett et al.'s.  Both are modelled here so
the reproduction can demonstrate those failure modes and the mitigations
(IPID validation, the SYN test).
"""

from __future__ import annotations

from typing import Protocol, Sequence

from repro.net.flow import FlowKey
from repro.net.packet import PROTO_ICMP, Packet
from repro.sim.path import PathElement
from repro.sim.simulator import Simulator


class Site(Protocol):
    """Anything that can terminate traffic for an address: a host or a cluster."""

    def deliver(self, packet: Packet) -> None:
        """Accept a packet arriving from the network."""


class LoadBalancer:
    """A transparent per-flow load balancer in front of several backend hosts.

    Flows are assigned to backends by hashing the direction-agnostic flow key
    (the common "hash on the four-tuple" strategy the paper describes), so
    every packet of a TCP connection — including both SYNs of the SYN test —
    reaches the same backend, while two distinct connections will frequently
    land on different backends.
    """

    def __init__(self, backends: Sequence[Site], hash_salt: int = 0) -> None:
        if not backends:
            raise ValueError("load balancer requires at least one backend")
        self._backends = list(backends)
        self._hash_salt = hash_salt
        self.flows_assigned: dict[FlowKey, int] = {}
        self.packets_forwarded = 0
        self.non_tcp_packets = 0

    @property
    def backends(self) -> tuple[Site, ...]:
        """The backend sites behind this balancer."""
        return tuple(self._backends)

    def backend_for_flow(self, key: FlowKey) -> int:
        """Return the index of the backend serving the given flow."""
        material = (key.addr_a, key.port_a, key.addr_b, key.port_b, self._hash_salt)
        return hash(material) % len(self._backends)

    def deliver(self, packet: Packet) -> None:
        """Forward a packet to the backend owning its flow."""
        self.packets_forwarded += 1
        if packet.is_tcp():
            key = packet.four_tuple().flow_key()
            index = self.backend_for_flow(key)
            self.flows_assigned[key] = index
        else:
            # Non-TCP traffic (e.g. ICMP echo) has no flow; send it to the
            # first backend, which is what a VIP-level responder would do.
            self.non_tcp_packets += 1
            index = 0
        self._backends[index].deliver(packet)


class IcmpRateLimiter(PathElement):
    """Token-bucket rate limiter applied to ICMP packets only.

    TCP traffic passes untouched; ICMP packets beyond the sustained rate are
    silently dropped, which is how many operators deploy ICMP limiting and
    why ping-based reordering measurements can silently lose samples.
    """

    def __init__(
        self,
        rate_per_second: float,
        burst: int = 5,
    ) -> None:
        super().__init__()
        if rate_per_second <= 0.0:
            raise ValueError(f"rate must be positive: {rate_per_second}")
        if burst < 1:
            raise ValueError(f"burst must be at least one packet: {burst}")
        self.rate_per_second = rate_per_second
        self.burst = burst
        self._tokens = float(burst)
        self._last_refill = 0.0
        self.icmp_dropped = 0
        self.icmp_forwarded = 0

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._last_refill)
        self._tokens = min(float(self.burst), self._tokens + elapsed * self.rate_per_second)
        self._last_refill = now

    def handle_packet(self, packet: Packet) -> None:
        if packet.ip.protocol != PROTO_ICMP:
            self._emit(packet)
            return
        self._refill(self.sim.now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self.icmp_forwarded += 1
            self._emit(packet)
        else:
            self.icmp_dropped += 1


class IcmpFilter(PathElement):
    """Drops all ICMP traffic (a site that does not answer ping at all)."""

    def __init__(self) -> None:
        super().__init__()
        self.icmp_dropped = 0

    def handle_packet(self, packet: Packet) -> None:
        if packet.ip.protocol == PROTO_ICMP:
            self.icmp_dropped += 1
            return
        self._emit(packet)


def attach_site(sim: Simulator, site: Site) -> None:
    """No-op hook kept for API symmetry; sites are passive receivers."""
    del sim, site
