"""The event queue underlying the simulator.

Events are ordered by (time, insertion sequence) so that simultaneous events
fire in the order they were scheduled, which keeps runs fully deterministic
for a given seed.

The heap itself stores plain ``(time, sequence, event)`` tuples rather than
rich comparable objects: tuple comparison is implemented in C and never calls
back into Python, which makes push/pop substantially cheaper than ordering
dataclass instances.  The :class:`Event` returned to callers is a slotted
cancellation handle riding along in the tuple's third slot (never compared,
because ``sequence`` is unique).
"""

from __future__ import annotations

from typing import Callable, Optional

from heapq import heappop as _heappop, heappush as _heappush

from repro.net.errors import SimulationError

EventCallback = Callable[[], None]

# Event lifecycle states.  An event is counted by ``EventQueue.__len__`` only
# while PENDING; the transitions PENDING->FIRED (on pop) and
# PENDING->CANCELLED (on cancel) each decrement the live count exactly once,
# which is what makes ``cancel`` idempotent and safe to call on an event that
# already fired.
_PENDING = 0
_FIRED = 1
_CANCELLED = 2


class Event:
    """A scheduled callback: the cancellation handle returned by ``push``.

    Cancelled events stay in the heap but are skipped when popped, which
    makes cancellation O(1) — the standard lazy-deletion trick.
    """

    __slots__ = ("time", "sequence", "callback", "_state", "_queue")

    def __init__(self, time: float, sequence: int, callback: EventCallback,
                 queue: Optional["EventQueue"] = None) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self._state = _PENDING
        self._queue = queue

    @property
    def cancelled(self) -> bool:
        """True once this event has been cancelled (fired events stay False)."""
        return self._state == _CANCELLED

    def cancel(self) -> None:
        """Mark this event so the event loop skips it (idempotent).

        Safe to call at any point in the event's life: cancelling an event
        that already fired (or was already cancelled) is a no-op, so the
        queue's live count never goes negative.
        """
        if self._state == _PENDING:
            self._state = _CANCELLED
            if self._queue is not None:
                self._queue._live -= 1

    def __repr__(self) -> str:
        state = {_PENDING: "pending", _FIRED: "fired", _CANCELLED: "cancelled"}[self._state]
        return f"Event(time={self.time!r}, sequence={self.sequence}, {state})"


class EventQueue:
    """A deterministic min-heap of ``(time, sequence, Event)`` tuples."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._sequence = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def is_empty(self) -> bool:
        """Return True when no live (non-cancelled) events remain."""
        return self._live == 0

    def push(self, time: float, callback: EventCallback) -> Event:
        """Schedule ``callback`` at absolute simulated ``time`` and return the event."""
        if time < 0.0:
            raise SimulationError(f"cannot schedule an event before time zero: {time}")
        sequence = self._sequence
        self._sequence = sequence + 1
        event = Event(time, sequence, callback, self)
        _heappush(self._heap, (time, sequence, event))
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously pushed event (idempotent, safe after it fired)."""
        event.cancel()

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the next live event, or None when empty."""
        heap = self._heap
        while heap and heap[0][2]._state == _CANCELLED:
            _heappop(heap)
        if not heap:
            return None
        return heap[0][0]

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or None when empty."""
        heap = self._heap
        while heap:
            event = _heappop(heap)[2]
            if event._state == _PENDING:
                event._state = _FIRED
                self._live -= 1
                return event
        return None

    def pop_due(self, deadline: float) -> Optional[Event]:
        """Pop the next live event firing at or before ``deadline``, else None.

        A single-pass alternative to ``peek_time()`` followed by ``pop()``:
        the run loops call this once per event instead of walking the heap
        head twice.
        """
        heap = self._heap
        while heap:
            head = heap[0]
            event = head[2]
            if event._state == _CANCELLED:
                _heappop(heap)
                continue
            if head[0] > deadline:
                return None
            _heappop(heap)
            event._state = _FIRED
            self._live -= 1
            return event
        return None
